#include "boom/boom.hh"

#include <algorithm>

#include "common/logging.hh"

namespace icicle
{

// --------------------------------------------------------- configs

BoomConfig
BoomConfig::small()
{
    BoomConfig c;
    c.name = "SmallBoomV3";
    c.fetchWidth = 4;
    c.coreWidth = 1;
    c.fetchBufferEntries = 12;
    c.robEntries = 32;
    c.iqEntries = {8, 8, 8};
    c.issueWidth = {1, 1, 1};
    c.ldqEntries = 8;
    c.stqEntries = 8;
    c.numMshrs = 2;
    c.mem.icachePrefetch = true;
    return c;
}

BoomConfig
BoomConfig::medium()
{
    BoomConfig c;
    c.name = "MediumBoomV3";
    c.fetchWidth = 4;
    c.coreWidth = 2;
    c.fetchBufferEntries = 12;
    c.robEntries = 64;
    c.iqEntries = {12, 20, 16};
    c.issueWidth = {2, 1, 1};
    c.ldqEntries = 16;
    c.stqEntries = 16;
    c.numMshrs = 2;
    c.mem.icachePrefetch = true;
    return c;
}

BoomConfig
BoomConfig::large()
{
    BoomConfig c; // defaults in the header are LargeBoomV3
    c.mem.icachePrefetch = true;
    return c;
}

BoomConfig
BoomConfig::mega()
{
    BoomConfig c;
    c.name = "MegaBoomV3";
    c.fetchWidth = 8;
    c.coreWidth = 4;
    c.fetchBufferEntries = 24;
    c.robEntries = 128;
    c.iqEntries = {24, 40, 32};
    c.issueWidth = {4, 2, 2};
    c.ldqEntries = 32;
    c.stqEntries = 32;
    c.numMshrs = 8;
    c.mem.icachePrefetch = true;
    return c;
}

BoomConfig
BoomConfig::giga()
{
    BoomConfig c;
    c.name = "GigaBoomV3";
    c.fetchWidth = 8;
    c.coreWidth = 5;
    c.fetchBufferEntries = 24;
    c.robEntries = 130;
    c.iqEntries = {24, 40, 32};
    c.issueWidth = {4, 3, 2};
    c.ldqEntries = 32;
    c.stqEntries = 32;
    c.numMshrs = 8;
    c.mem.icachePrefetch = true;
    return c;
}

std::vector<BoomConfig>
BoomConfig::allSizes()
{
    return {small(), medium(), large(), mega(), giga()};
}

// ------------------------------------------------------------- core

BoomCore::BoomCore(const BoomConfig &config, const Program &program)
    : cfg(config), exec(program), mem(config.mem), mshrs(config.numMshrs),
      // BOOM pairs TAGE with a large BTB (Table IV: 14..28 KiB of
      // predictor storage), unlike Rocket's 28-entry BTB.
      btb(1024), csrs(CoreKind::Boom, config.counterArch, &events),
      fetchBuffer(config.fetchBufferEntries), rob(config.robEntries)
{
    exec.setCsrBackend(&csrs);
    renameMap.fill(SeqSlot{});
    events.setNumSources(EventId::UopsIssued, cfg.totalIssueWidth());
    events.setNumSources(EventId::FetchBubbles, cfg.coreWidth);
    events.setNumSources(EventId::UopsRetired, cfg.coreWidth);
    events.setNumSources(EventId::DCacheBlocked, cfg.coreWidth);
    events.setNumSources(EventId::DCacheBlockedDram, cfg.coreWidth);
    events.setNumSources(EventId::InstRetired, cfg.coreWidth);
}

BoomCore::RobEntry *
BoomCore::findBySeq(const SeqSlot &handle)
{
    if (handle.seq == 0)
        return nullptr;
    RobEntry &entry = rob[handle.slot];
    // A recycled slot holds a younger seq, so a stale handle can
    // never alias: it simply fails the check, like a hash miss did.
    if (!entry.valid || entry.seq != handle.seq)
        return nullptr;
    return &entry;
}

bool
BoomCore::sourcesReady(const RobEntry &entry) const
{
    for (const SeqSlot &src : entry.src) {
        if (src.seq == 0)
            continue;
        // Producers are older; if they left the ROB they committed.
        const RobEntry *producer =
            const_cast<BoomCore *>(this)->findBySeq(src);
        if (producer && producer->state != RobState::Done)
            return false;
    }
    return true;
}

IqType
BoomCore::routeToIq(Op op) const
{
    switch (classOf(op)) {
      case InstClass::Load:
      case InstClass::Store:
        return IqType::Mem;
      default:
        return IqType::Int;
    }
}

void
BoomCore::redirectFrontend()
{
    wrongPathMode = false;
    recovering = true;
    redirectWait = cfg.frontendRestartCycles;
    lastFetchBlock = ~0ull;
}

void
BoomCore::flushFrom(u64 first_bad, bool replay)
{
    if (replay) {
        // The replay queue is rebuilt in place instead of through a
        // temporary deque per machine clear: prepend the correct-path
        // uops still sitting in the fetch buffer, then (during the
        // ROB walk below) the squashed correct-path uops in front of
        // them. Steady state allocates nothing.
        for (u64 i = fetchBuffer.size(); i-- > 0;) {
            if (!(fetchBuffer.flagsAt(i) & uopflag::wrongPath))
                replayQueue.pushFront(fetchBuffer.at(i));
        }
        // Replayed fences will re-block fetch on re-delivery.
        fenceBlocking = false;
    }
    fetchBuffer.clear();

    // Walk the ROB from the youngest end, squashing entries. The walk
    // is youngest-to-oldest, so pushFront lands the replayed uops in
    // program order ahead of everything queued above.
    while (robCount > 0) {
        const u32 idx = (robTail + cfg.robEntries - 1) % cfg.robEntries;
        RobEntry &entry = rob[idx];
        if (!entry.valid || entry.seq < first_bad)
            break;
        if (replay && !entry.uop.wrongPath())
            replayQueue.pushFront(entry.uop);
        if (entry.isMem && !entry.isStore && ldqUsed > 0)
            ldqUsed--;
        entry.valid = false;
        robTail = idx;
        robCount--;
    }

    for (auto &iq : iqs) {
        iq.erase(std::remove_if(iq.begin(), iq.end(),
                                [&](const SeqSlot &s) {
                                    return s.seq >= first_bad;
                                }),
                 iq.end());
    }
    // The STQ is seq-sorted (dispatch order), so the squashed entries
    // are exactly the tail block.
    while (!stq.empty() && stq.back().seq >= first_bad)
        stq.pop_back();
    // issuedLoads is scanned with order-independent predicates only
    // (min-seq search, per-entry overlap checks), so swap-remove.
    for (u64 i = issuedLoads.size(); i-- > 0;) {
        if (issuedLoads[i].seq >= first_bad) {
            issuedLoads[i] = issuedLoads.back();
            issuedLoads.pop_back();
        }
    }
    for (SeqSlot &mapping : renameMap) {
        if (mapping.seq >= first_bad)
            mapping = SeqSlot{};
    }
}

// ------------------------------------------------------------ commit

void
BoomCore::stageCommit()
{
    for (u32 lane = 0; lane < cfg.coreWidth && !halted; lane++) {
        if (robCount == 0)
            break;
        RobEntry &head = rob[robHead];
        if (!head.valid || head.state != RobState::Done)
            break;
        ICICLE_ASSERT(!head.uop.wrongPath(),
                      "wrong-path uop reached commit");

        events.raise(EventId::UopsRetired, lane);
        events.raise(EventId::InstRetired, lane);

        const PipeUop &uop = head.uop;
        const InstClass cls = classOf(uop.ret.inst.op);
        if (head.isFence) {
            events.raise(EventId::FenceRetired);
            fenceBlocking = false;
            redirectFrontend();
        }
        if (cls == InstClass::System) {
            events.raise(EventId::Exception);
            halted = true;
        }
        if (head.isStore) {
            // Stores commit in seq order and the STQ is seq-sorted,
            // so the committing store is always the STQ head.
            ICICLE_ASSERT(!stq.empty() && stq.front().seq == head.seq,
                          "STQ head out of sync at commit");
            stq.erase(stq.begin());
        }
        if (head.isMem && !head.isStore) {
            if (ldqUsed > 0)
                ldqUsed--;
            for (u64 i = 0; i < issuedLoads.size(); i++) {
                if (issuedLoads[i].seq == head.seq) {
                    issuedLoads[i] = issuedLoads.back();
                    issuedLoads.pop_back();
                    break;
                }
            }
        }
        if (renameMap[uop.ret.inst.rd].seq == head.seq &&
            writesRd(uop.ret.inst.op))
            renameMap[uop.ret.inst.rd] = SeqSlot{};

        head.valid = false;
        robHead = (robHead + 1) % cfg.robEntries;
        robCount--;

        // Fences and exceptions end the commit group.
        if (head.isFence || cls == InstClass::System)
            break;
    }
}

// ---------------------------------------------------------- complete

void
BoomCore::stageComplete()
{
    mshrs.drain(now);
    while (!completions.empty() && completions.top().at <= now) {
        const Completion done = completions.top();
        completions.pop();
        RobEntry *entry = findBySeq({done.seq, done.slot});
        if (!entry || entry->state != RobState::Issued) {
            continue; // squashed
        }
        entry->state = RobState::Done;
        entry->doneAt = now;

        const PipeUop &uop = entry->uop;
        const InstClass cls = classOf(uop.ret.inst.op);
        if (cls == InstClass::Branch || cls == InstClass::JumpReg)
            events.raise(EventId::BranchResolved);
        if (uop.mispredicted()) {
            events.raise(EventId::BranchMispredict);
            if (uop.targetMispredict())
                events.raise(EventId::CtrlFlowTargetMispredict);
            // Squash everything younger (all wrong-path synthetics)
            // and restart the frontend on the correct path.
            flushFrom(done.seq + 1, false);
            redirectFrontend();
        }
    }
}

// ------------------------------------------------------------- issue

void
BoomCore::stageIssue()
{
    issuedThisCycle = 0;
    u64 machine_clear_from = 0;

    u32 lane_base = 0;
    for (u32 q = 0; q < kNumIqs; q++) {
        auto &iq = iqs[q];
        u32 issued_here = 0;
        // Single in-place pass: issue eligible entries and compact
        // the survivors forward, rather than a separate remove_if
        // sweep paying a second ROB lookup per entry per cycle.
        u64 keep = 0;
        for (u64 pos = 0; pos < iq.size(); pos++) {
            const SeqSlot handle = iq[pos];
            RobEntry *entry = findBySeq(handle);
            if (!entry || entry->state != RobState::InQueue)
                continue; // squashed: drop
            if (issued_here >= cfg.issueWidth[q] ||
                !sourcesReady(*entry)) {
                iq[keep++] = handle;
                continue;
            }

            const PipeUop &uop = entry->uop;
            const InstClass cls = classOf(uop.ret.inst.op);
            Cycle done_at = now + 1;
            bool can_issue = true;

            switch (cls) {
              case InstClass::Mul:
                done_at = now + cfg.mulLatency;
                break;
              case InstClass::Div:
                if (divBusyUntil > now) {
                    can_issue = false;
                } else {
                    divBusyUntil = now + cfg.divLatency;
                    done_at = now + cfg.divLatency;
                }
                break;
              case InstClass::Load: {
                const Addr addr = uop.ret.memAddr;
                // Address translation happens before the cache access
                // on either path below.
                const TlbResult translation = mem.tlbs().data(addr);
                if (!translation.l1Hit) {
                    events.raise(EventId::DTlbMiss);
                    if (!translation.l2Hit)
                        events.raise(EventId::L2TlbMiss);
                }
                const u32 xlat = translation.latency;
                // Memory dependence: loads the store-set predictor has
                // flagged wait until all older stores have issued.
                bool older_store_conflict = false;
                bool forward = false;
                const bool flagged =
                    stlDependents.count(uop.ret.pc) != 0;
                for (const StqEntry &s : stq) {
                    if (s.seq >= entry->seq)
                        continue;
                    if (!s.issued) {
                        if (flagged) {
                            older_store_conflict = true;
                            break;
                        }
                        continue; // speculate past it
                    }
                    if (s.addr < addr + uop.ret.memSize &&
                        addr < s.addr + s.size)
                        forward = true;
                }
                if (older_store_conflict) {
                    can_issue = false;
                    break;
                }
                if (forward) {
                    done_at = now + 2 + xlat; // store-to-load forward
                    break;
                }
                const u64 block = addr / cfg.mem.l1d.blockBytes;
                if (mshrs.pending(block)) {
                    // Secondary miss: merge into the in-flight refill.
                    done_at = std::max(mshrs.readyCycle(block),
                                       now + 1 + xlat);
                } else if (mem.l1d().probe(addr)) {
                    mem.l1d().access(addr, false);
                    done_at = now + 1 + cfg.mem.l1d.hitLatency + xlat;
                } else if (mshrs.full()) {
                    can_issue = false; // structural: no MSHR free
                } else {
                    const MemResult result = mem.data(addr, false);
                    if (result.writeback)
                        events.raise(EventId::DCacheRelease);
                    events.raise(EventId::DCacheMiss);
                    done_at = now + result.latency + xlat;
                    mshrs.allocate(block, done_at, !result.l2Hit);
                }
                if (can_issue) {
                    issuedLoads.push_back(
                        {entry->seq, addr, uop.ret.memSize,
                         uop.ret.pc});
                }
                break;
              }
              case InstClass::Store: {
                const Addr addr = uop.ret.memAddr;
                const TlbResult translation = mem.tlbs().data(addr);
                if (!translation.l1Hit) {
                    events.raise(EventId::DTlbMiss);
                    if (!translation.l2Hit)
                        events.raise(EventId::L2TlbMiss);
                }
                const u64 block = addr / cfg.mem.l1d.blockBytes;
                if (!mshrs.pending(block) && !mem.l1d().probe(addr)) {
                    if (mshrs.full()) {
                        can_issue = false;
                        break;
                    }
                    const MemResult result = mem.data(addr, true);
                    if (result.writeback)
                        events.raise(EventId::DCacheRelease);
                    events.raise(EventId::DCacheMiss);
                    mshrs.allocate(block, now + result.latency,
                                   !result.l2Hit);
                } else {
                    mem.l1d().access(addr, true);
                }
                done_at = now + 1 + translation.latency;
                // Memory ordering check: a younger load to the same
                // bytes already issued speculatively -> machine clear.
                for (const IssuedLoad &load : issuedLoads) {
                    if (load.seq > entry->seq &&
                        load.addr < addr + uop.ret.memSize &&
                        addr < load.addr + load.size) {
                        stlDependents.insert(load.pc);
                        if (machine_clear_from == 0 ||
                            load.seq < machine_clear_from)
                            machine_clear_from = load.seq;
                    }
                }
                for (StqEntry &s : stq) {
                    if (s.seq == entry->seq) {
                        s.issued = true;
                        break;
                    }
                }
                break;
              }
              default:
                done_at = now + 1;
                break;
            }

            if (!can_issue) {
                iq[keep++] = handle;
                continue;
            }

            entry->state = RobState::Issued;
            completions.push(Completion{done_at, handle.seq,
                                        handle.slot});
            events.raise(EventId::UopsIssued, lane_base + issued_here);
            issued_here++;
            issuedThisCycle++;
        }
        iq.resize(keep);
        lane_base += cfg.issueWidth[q];
    }

    if (machine_clear_from != 0) {
        events.raise(EventId::Flush);
        numMachineClears++;
        flushFrom(machine_clear_from, true);
        redirectFrontend();
    }

    // D$-blocked per commit-width lane w: high if at most w uops
    // issued this cycle while at least one issue queue holds waiting
    // uops and an MSHR is handling a miss (§IV-A heuristic).
    bool any_waiting = false;
    for (const auto &iq : iqs) {
        if (!iq.empty())
            any_waiting = true;
    }
    if (any_waiting && mshrs.anyBusy()) {
        const bool dram = mshrs.anyDramBusy();
        for (u32 w = issuedThisCycle; w < cfg.coreWidth; w++) {
            events.raise(EventId::DCacheBlocked, w);
            // Third-level attribution: the stall window overlaps a
            // DRAM-level refill.
            if (dram)
                events.raise(EventId::DCacheBlockedDram, w);
        }
    }
}

// ---------------------------------------------------------- dispatch

void
BoomCore::stageDispatch()
{
    if (!fetchBuffer.empty())
        events.raise(EventId::IBufValid);

    u32 accepted = 0;
    bool backpressured = false;
    while (accepted < cfg.coreWidth) {
        if (fetchBuffer.empty())
            break;
        // References into the ring head stay valid until the
        // popFront() at the bottom of the loop (nothing is pushed in
        // between); the one PipeUop copy lands directly in the ROB.
        const Retired &ret = fetchBuffer.retFront();
        const u8 flags = fetchBuffer.flagsFront();
        const InstClass cls = classOf(ret.inst.op);
        const IqType q = routeToIq(ret.inst.op);

        if (robCount >= cfg.robEntries ||
            iqs[static_cast<u32>(q)].size() >=
                cfg.iqEntries[static_cast<u32>(q)]) {
            backpressured = true;
            break;
        }
        if (cls == InstClass::Load && ldqUsed >= cfg.ldqEntries) {
            backpressured = true;
            break;
        }
        if (cls == InstClass::Store && stq.size() >= cfg.stqEntries) {
            backpressured = true;
            break;
        }
        // Fences dispatch alone, once the machine has drained.
        if (cls == InstClass::Fence &&
            (robCount != 0 || !stq.empty())) {
            backpressured = true;
            break;
        }

        RobEntry &entry = rob[robTail];
        // Field-wise reset (not entry = RobEntry{}): the aggregate
        // assignment re-zeroes the embedded PipeUop only to overwrite
        // it on the next line, which shows up at 8-wide dispatch.
        entry.valid = true;
        entry.seq = nextSeq++;
        entry.uop = fetchBuffer.front();
        entry.iq = q;
        entry.src[0] = SeqSlot{};
        entry.src[1] = SeqSlot{};
        entry.doneAt = 0;
        entry.isMem = cls == InstClass::Load || cls == InstClass::Store;
        entry.isStore = cls == InstClass::Store;
        entry.isFence = cls == InstClass::Fence;
        if (!(flags & uopflag::wrongPath)) {
            if (readsRs1(ret.inst.op) && ret.inst.rs1)
                entry.src[0] = renameMap[ret.inst.rs1];
            if (readsRs2(ret.inst.op) && ret.inst.rs2)
                entry.src[1] = renameMap[ret.inst.rs2];
            if (writesRd(ret.inst.op) && ret.inst.rd)
                renameMap[ret.inst.rd] = SeqSlot{entry.seq, robTail};
        }
        entry.state = RobState::InQueue;
        iqs[static_cast<u32>(q)].push_back(SeqSlot{entry.seq, robTail});
        if (entry.isStore) {
            stq.push_back(
                {entry.seq, ret.memAddr, ret.memSize, false});
        }
        if (entry.isMem && !entry.isStore)
            ldqUsed++;

        robTail = (robTail + 1) % cfg.robEntries;
        robCount++;
        fetchBuffer.popFront();
        accepted++;
    }

    if (accepted > 0 || !backpressured)
        events.raise(EventId::IBufReady);

    // Fetch-bubble per decode lane i: the backend had room for lane i
    // but the frontend supplied nothing, outside recovery (§IV-A).
    const bool stream_exhausted = streamDone && fetchBuffer.empty() &&
                                  replayQueue.empty() && !wrongPathMode;
    if (!recovering && !backpressured && !halted && !stream_exhausted &&
        !fenceBlocking) {
        for (u32 lane = accepted; lane < cfg.coreWidth; lane++) {
            if (robCount + (lane - accepted) < cfg.robEntries)
                events.raise(EventId::FetchBubbles, lane);
        }
    }
}

// ------------------------------------------------------------- fetch

void
BoomCore::predictControlFlow(PipeUop &uop)
{
    const Retired &ret = uop.ret;
    const Addr pc = ret.pc;
    const Addr fallthrough = pc + 4;
    const InstClass cls = classOf(ret.inst.op);

    Addr predicted_next = fallthrough;

    if (cls == InstClass::Branch) {
        const bool pred_taken = tage.predictTaken(pc);
        tage.recordOutcome(pred_taken, ret.taken);
        if (pred_taken) {
            const std::optional<Addr> target = btb.lookup(pc);
            if (target) {
                predicted_next = *target;
            } else {
                // Conditional-branch targets are PC-relative: decode
                // recomputes them and resteers the frontend (a short
                // bubble), not a full mispredict.
                predicted_next =
                    pc + static_cast<u64>(ret.inst.imm);
                redirectWait = std::max(redirectWait, 2u);
            }
        }
        tage.update(pc, ret.taken);
        if (ret.taken)
            btb.update(pc, ret.nextPc);
    } else if (cls == InstClass::Jump) {
        const std::optional<Addr> target = btb.lookup(pc);
        predicted_next = target.value_or(ret.nextPc);
        if (!target)
            redirectWait = std::max(redirectWait, 1u);
        btb.update(pc, ret.nextPc);
        if (ret.inst.rd == reg::ra)
            ras.push(fallthrough);
    } else { // JumpReg
        const bool is_return =
            ret.inst.rs1 == reg::ra && ret.inst.rd == reg::zero;
        std::optional<Addr> target;
        if (is_return)
            target = ras.pop();
        if (!target)
            target = btb.lookup(pc);
        predicted_next = target.value_or(fallthrough);
        btb.update(pc, ret.nextPc);
        if (ret.inst.rd == reg::ra)
            ras.push(fallthrough);
    }

    uop.predictedNext = predicted_next;
    if (cls != InstClass::Jump && predicted_next != ret.nextPc) {
        uop.flags |= uopflag::mispredicted;
        if (cls == InstClass::JumpReg)
            uop.flags |= uopflag::targetMispredict;
        wrongPathMode = true;
        wrongPathPc = predicted_next;
    }
}

void
BoomCore::stageFetch()
{
    if (redirectWait > 0) {
        redirectWait--;
        if (recovering)
            events.raise(EventId::Recovering);
        return;
    }

    if (icacheReadyAt > now) {
        // New BOOM I$-blocked heuristic: refill in progress while the
        // fetch buffer is empty.
        if (fetchBuffer.empty())
            events.raise(EventId::ICacheBlocked);
        if (recovering)
            events.raise(EventId::Recovering);
        return;
    }

    if (halted || fenceBlocking) {
        if (recovering)
            events.raise(EventId::Recovering);
        return;
    }

    for (u32 slot = 0; slot < cfg.fetchWidth; slot++) {
        if (fetchBuffer.size() >= cfg.fetchBufferEntries)
            break;

        PipeUop uop;
        Addr fetch_pc;
        bool from_replay = false;
        if (wrongPathMode) {
            fetch_pc = wrongPathPc;
        } else if (!replayQueue.empty()) {
            uop = replayQueue.front();
            fetch_pc = uop.ret.pc;
            from_replay = true;
        } else {
            if (streamDone)
                break;
            if (!streamValid) {
                if (exec.halted()) {
                    streamDone = true;
                    break;
                }
                streamHead = exec.step();
                streamValid = true;
            }
            fetch_pc = streamHead.pc;
        }

        const u64 block = fetch_pc / cfg.mem.l1i.blockBytes;
        if (block != lastFetchBlock) {
            const MemResult result = mem.fetch(fetch_pc);
            if (result.tlbMiss) {
                events.raise(EventId::ITlbMiss);
                if (result.l2TlbMiss)
                    events.raise(EventId::L2TlbMiss);
            }
            if (!result.l1Hit || result.tlbMiss) {
                if (!result.l1Hit)
                    events.raise(EventId::ICacheMiss);
                icacheReadyAt = now + result.latency;
                if (fetchBuffer.empty())
                    events.raise(EventId::ICacheBlocked);
                return;
            }
            lastFetchBlock = block;
        }

        if (wrongPathMode) {
            uop = PipeUop{};
            uop.ret.pc = fetch_pc;
            uop.ret.inst.op = Op::Addi; // synthetic wrong-path uop
            uop.ret.nextPc = fetch_pc + 4;
            uop.flags = uopflag::wrongPath;
            wrongPathPc += 4;
            fetchBuffer.pushBack(uop);
            recovering = false;
            continue;
        }

        if (from_replay) {
            replayQueue.popFront();
            // Clear stale speculation flags; re-predict below.
            uop.flags &= static_cast<u8>(
                ~(uopflag::mispredicted | uopflag::targetMispredict));
        } else {
            uop.ret = streamHead;
            streamValid = false;
            if (streamHead.halted)
                streamDone = true;
        }

        const bool is_cf = uop.ret.isControlFlow();
        if (is_cf)
            predictControlFlow(uop);
        fetchBuffer.pushBack(uop);
        recovering = false;

        if (classOf(uop.ret.inst.op) == InstClass::Fence) {
            fenceBlocking = true;
            break;
        }
        if (is_cf) {
            const Addr next = uop.mispredicted() ? uop.predictedNext
                                                 : uop.ret.nextPc;
            if (next != uop.ret.pc + 4) {
                // Taken control flow ends the fetch packet and costs
                // one redirect cycle through the fetch pipeline.
                lastFetchBlock = ~0ull;
                redirectWait = std::max(redirectWait, 1u);
                break;
            }
        }
        if (uop.ret.halted)
            break;
    }
    // Still recovering: no valid fetch packet was produced this cycle.
    if (recovering)
        events.raise(EventId::Recovering);
}

// -------------------------------------------------------------- tick

void
BoomCore::tick()
{
    events.clear();
    events.raise(EventId::Cycles);

    stageCommit();
    stageComplete();
    stageIssue();
    stageDispatch();
    stageFetch();

    csrs.tick(events);
    // Only events raised this cycle can change a total.
    u64 dirty = events.dirty();
    while (dirty) {
        const u32 e = static_cast<u32>(std::countr_zero(dirty));
        dirty &= dirty - 1;
        const u16 mask = events.mask(static_cast<EventId>(e));
        totals[e] += static_cast<u64>(std::popcount(mask));
        u16 bits = mask;
        while (bits) {
            const u32 lane = static_cast<u32>(std::countr_zero(bits));
            laneTotals[e][lane]++;
            bits &= bits - 1;
        }
    }
    now++;
}

u64
BoomCore::run(u64 max_cycles,
              const std::function<void(Cycle, const EventBus &)> &on_cycle)
{
    if (!on_cycle)
        return runLoop(max_cycles, [](Cycle, const EventBus &) {});
    return runLoop(max_cycles, [&on_cycle](Cycle c, const EventBus &b) {
        on_cycle(c, b);
    });
}

} // namespace icicle
