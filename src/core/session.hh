/**
 * @file
 * Top-level convenience API: build a core, run a workload, get TMA.
 *
 * This is the entry point a downstream user consumes:
 *
 *   auto core = makeBoom(BoomConfig::large(), program);
 *   core->run();
 *   TmaResult tma = analyzeTma(*core);
 */

#ifndef ICICLE_CORE_SESSION_HH
#define ICICLE_CORE_SESSION_HH

#include <memory>

#include "boom/boom.hh"
#include "core/core.hh"
#include "rocket/rocket.hh"
#include "tma/tma.hh"
#include "trace/trace.hh"

namespace icicle
{

class TraceSink;

/** Construct a Rocket core as an abstract Core. */
std::unique_ptr<Core> makeRocket(const RocketConfig &config,
                                 const Program &program);

/** Construct a BOOM core as an abstract Core. */
std::unique_ptr<Core> makeBoom(const BoomConfig &config,
                               const Program &program);

/**
 * Gather the TMA counter inputs from a core's exact host-side event
 * totals (the out-of-band path; the PerfHarness provides the in-band
 * CSR path).
 */
TmaCounters gatherTmaCounters(const Core &core);

/** TMA model parameters appropriate for this core. */
TmaParams tmaParamsFor(const Core &core);

/** One-call out-of-band analysis: gather counters and run the model. */
TmaResult analyzeTma(const Core &core);

/**
 * Streaming-capture mode: run the core and feed each cycle's packed
 * trace word straight into the sink — the in-memory Trace is never
 * materialized, so peak capture memory is whatever the sink buffers
 * (one block for a StoreWriter) regardless of trace length. The sink
 * is finish()ed before returning. Returns cycles simulated.
 *
 *   StoreWriter sink(spec, "run.icst");
 *   streamTraceRun(*core, spec, 1'000'000'000, sink);
 */
u64 streamTraceRun(Core &core, const TraceSpec &spec, u64 max_cycles,
                   TraceSink &sink);

} // namespace icicle

#endif // ICICLE_CORE_SESSION_HH
