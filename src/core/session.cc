#include "core/session.hh"

#include <array>

#include "analysis/lint.hh"
#include "core/dispatch.hh"
#include "store/store.hh"

namespace icicle
{

std::unique_ptr<Core>
makeRocket(const RocketConfig &config, const Program &program)
{
    auto core = std::make_unique<RocketCore>(config, program);
    // Fail fast on model-invariant violations before any cycle runs
    // (opt out with setLintOnConstruct(false)).
    enforceLint(lintCore(*core), "makeRocket");
    return core;
}

std::unique_ptr<Core>
makeBoom(const BoomConfig &config, const Program &program)
{
    auto core = std::make_unique<BoomCore>(config, program);
    enforceLint(lintCore(*core), "makeBoom");
    return core;
}

TmaCounters
gatherTmaCounters(const Core &core)
{
    TmaCounters c;
    c.cycles = core.total(EventId::Cycles);
    if (core.kind() == CoreKind::Boom) {
        c.retiredUops = core.total(EventId::UopsRetired);
        c.issuedUops = core.total(EventId::UopsIssued);
    } else {
        c.retiredUops = core.total(EventId::InstRetired);
        c.issuedUops = core.total(EventId::InstIssued);
    }
    c.fetchBubbles = core.total(EventId::FetchBubbles);
    c.recovering = core.total(EventId::Recovering);
    c.branchMispredicts = core.total(EventId::BranchMispredict);
    c.machineClears = core.total(EventId::Flush);
    c.fencesRetired = core.total(EventId::FenceRetired);
    c.icacheBlocked = core.total(EventId::ICacheBlocked);
    c.dcacheBlocked = core.total(EventId::DCacheBlocked);
    c.dcacheBlockedDram = core.total(EventId::DCacheBlockedDram);
    return c;
}

TmaParams
tmaParamsFor(const Core &core)
{
    TmaParams p;
    p.coreWidth = core.coreWidth();
    p.recoverLength = 4;
    return p;
}

TmaResult
analyzeTma(const Core &core)
{
    return computeTma(gatherTmaCounters(core), tmaParamsFor(core));
}

u64
streamTraceRun(Core &core, const TraceSpec &spec, u64 max_cycles,
               TraceSink &sink)
{
    const TracePacker packer(spec);
    // Pack into a host-side block so the sink's virtual append is
    // paid once per block rather than once per simulated cycle.
    std::array<u64, 1024> block;
    u64 fill = 0;
    const u64 cycles = runCoreLoop(
        core, max_cycles, [&](Cycle, const EventBus &bus) {
            block[fill++] = packer.pack(bus);
            if (fill == block.size()) {
                sink.appendBlock(block.data(), fill);
                fill = 0;
            }
        });
    if (fill > 0)
        sink.appendBlock(block.data(), fill);
    sink.finish();
    return cycles;
}

} // namespace icicle
