/**
 * @file
 * Abstract core interface implemented by both timing models.
 *
 * Everything above the core models (perf harness, tracer, TMA tool,
 * benchmark drivers) programs against this interface, mirroring how
 * the real Icicle software stack works against either Rocket or BOOM
 * through the same CSR/event protocol.
 */

#ifndef ICICLE_CORE_CORE_HH
#define ICICLE_CORE_CORE_HH

#include <functional>
#include <memory>

#include "isa/executor.hh"
#include "pmu/csr.hh"
#include "pmu/event.hh"

namespace icicle
{

/** Abstract simulated core. */
class Core
{
  public:
    virtual ~Core() = default;

    /** Advance one clock cycle. */
    virtual void tick() = 0;
    /** Program halted (pipeline drained)? */
    virtual bool done() const = 0;
    /** Run until done or max_cycles; returns cycles simulated. */
    virtual u64
    run(u64 max_cycles = ~0ull,
        const std::function<void(Cycle, const EventBus &)> &on_cycle =
            nullptr) = 0;

    virtual Cycle cycle() const = 0;
    virtual const EventBus &bus() const = 0;
    virtual CsrFile &csrFile() = 0;
    /** Read-only view of the CSR file (lint and analysis passes). */
    const CsrFile &
    csrs() const
    {
        return const_cast<Core *>(this)->csrFile();
    }
    virtual Executor &executor() = 0;

    virtual CoreKind kind() const = 0;
    /** Decode = commit width W_C (1 on Rocket). */
    virtual u32 coreWidth() const = 0;
    /** Total issue width W_I (1 on Rocket). */
    virtual u32 issueWidth() const = 0;
    /** Human-readable configuration name. */
    virtual const char *name() const = 0;

    /** Exact host-side event totals (out-of-band ground truth). */
    virtual u64 total(EventId id) const = 0;
    /** Per-source totals where the event has multiple lanes. */
    virtual u64 laneTotal(EventId id, u32 lane) const = 0;
};

} // namespace icicle

#endif // ICICLE_CORE_CORE_HH
