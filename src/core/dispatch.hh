/**
 * @file
 * Static dispatch into the core tick loops (ISSUE 7).
 *
 * The per-cycle hook paths (tracer, streaming store) used to go
 * through Core::run's std::function parameter: one virtual tick()
 * plus one type-erased hook call per simulated cycle. Both concrete
 * cores are final and expose a template runLoop(); resolving the
 * dynamic type once per *run* instead of once per *cycle* lets the
 * compiler devirtualize tick() and inline the hook.
 */

#ifndef ICICLE_CORE_DISPATCH_HH
#define ICICLE_CORE_DISPATCH_HH

#include <functional>
#include <utility>

#include "boom/boom.hh"
#include "core/core.hh"
#include "rocket/rocket.hh"

namespace icicle
{

/**
 * Run `core` for up to max_cycles with an inlined per-cycle hook.
 * Falls back to the virtual run() for Core subclasses other than the
 * two shipped models (e.g. test doubles).
 */
template <typename F>
u64
runCoreLoop(Core &core, u64 max_cycles, F &&hook)
{
    if (auto *rocket = dynamic_cast<RocketCore *>(&core))
        return rocket->runLoop(max_cycles, std::forward<F>(hook));
    if (auto *boom = dynamic_cast<BoomCore *>(&core))
        return boom->runLoop(max_cycles, std::forward<F>(hook));
    return core.run(max_cycles,
                    std::function<void(Cycle, const EventBus &)>(
                        std::forward<F>(hook)));
}

} // namespace icicle

#endif // ICICLE_CORE_DISPATCH_HH
