/**
 * @file
 * Structure-of-arrays pipeline buffers shared by the core timing
 * models (ISSUE 7 tick-loop refactor).
 *
 * Rocket's instruction buffer and BOOM's fetch/replay queues were
 * std::deque<struct>: every push/pop churned the deque's chunk map,
 * and the machine-clear replay path rebuilt a whole deque per flush.
 * Both also invited the reference-after-pop_front bug class ASan
 * caught in PR 1. UopRing replaces them with a power-of-two ring over
 * parallel arrays: the hot speculation flags live in a dense u8 lane
 * scanned without touching the (much larger) Retired payloads, all
 * steady-state operations are allocation-free, and front() returns by
 * value so there is no reference to invalidate.
 */

#ifndef ICICLE_CORE_PIPEBUF_HH
#define ICICLE_CORE_PIPEBUF_HH

#include <vector>

#include "common/types.hh"
#include "isa/executor.hh"

namespace icicle
{

/** Speculation flags carried by an in-flight pipeline entry. */
namespace uopflag
{
constexpr u8 wrongPath = 1u << 0;
/** Mispredicted at fetch. */
constexpr u8 mispredicted = 1u << 1;
/** Mispredict was a pure target miss (JALR / BTB). */
constexpr u8 targetMispredict = 1u << 2;
} // namespace uopflag

/**
 * One in-flight frontend entry, shared by Rocket's instruction
 * buffer and BOOM's fetch/replay queues (both cores previously kept
 * structurally identical private structs).
 */
struct PipeUop
{
    Retired ret;
    /** Predicted (possibly wrong) next PC, for wrong-path fetch. */
    Addr predictedNext = 0;
    u8 flags = 0;

    bool wrongPath() const { return (flags & uopflag::wrongPath) != 0; }
    bool mispredicted() const
    {
        return (flags & uopflag::mispredicted) != 0;
    }
    bool targetMispredict() const
    {
        return (flags & uopflag::targetMispredict) != 0;
    }
};

/**
 * Ring buffer of PipeUops in structure-of-arrays layout. Capacity is
 * rounded up to a power of two and grows by doubling only when a push
 * finds the ring full, so bounded buffers (ibuf, fetch buffer) never
 * allocate after construction and the unbounded replay queue
 * allocates O(log n) times total.
 */
class UopRing
{
  public:
    explicit UopRing(u64 min_capacity = 8)
    {
        u64 cap = 8;
        while (cap < min_capacity)
            cap <<= 1;
        rets.resize(cap);
        predNexts.resize(cap);
        flagBits.resize(cap);
        mask = cap - 1;
    }

    u64 size() const { return count; }
    bool empty() const { return count == 0; }
    void clear() { count = 0; head = 0; }

    void
    pushBack(const PipeUop &uop)
    {
        if (count > mask)
            grow();
        const u64 slot = (head + count) & mask;
        rets[slot] = uop.ret;
        predNexts[slot] = uop.predictedNext;
        flagBits[slot] = uop.flags;
        count++;
    }

    /** Prepend (used to splice replayed uops ahead of the queue). */
    void
    pushFront(const PipeUop &uop)
    {
        if (count > mask)
            grow();
        head = (head - 1) & mask;
        rets[head] = uop.ret;
        predNexts[head] = uop.predictedNext;
        flagBits[head] = uop.flags;
        count++;
    }

    void
    popFront()
    {
        head = (head + 1) & mask;
        count--;
    }

    /** Drop the youngest entry (squashing a speculative tail). */
    void popBack() { count--; }

    /** Copy of the oldest entry (no reference to invalidate). */
    PipeUop front() const { return at(0); }

    /** Copy of the i-th oldest entry. */
    PipeUop
    at(u64 i) const
    {
        const u64 slot = (head + i) & mask;
        PipeUop uop;
        uop.ret = rets[slot];
        uop.predictedNext = predNexts[slot];
        uop.flags = flagBits[slot];
        return uop;
    }

    /** Flag-lane peek: scans skip the Retired payload entirely. */
    u8 flagsAt(u64 i) const { return flagBits[(head + i) & mask]; }
    const Retired &retFront() const { return rets[head]; }
    u8 flagsFront() const { return flagBits[head]; }

  private:
    void
    grow()
    {
        const u64 old_cap = mask + 1;
        const u64 new_cap = old_cap * 2;
        std::vector<Retired> new_rets(new_cap);
        std::vector<Addr> new_preds(new_cap);
        std::vector<u8> new_flags(new_cap);
        for (u64 i = 0; i < count; i++) {
            const u64 slot = (head + i) & mask;
            new_rets[i] = rets[slot];
            new_preds[i] = predNexts[slot];
            new_flags[i] = flagBits[slot];
        }
        rets = std::move(new_rets);
        predNexts = std::move(new_preds);
        flagBits = std::move(new_flags);
        head = 0;
        mask = new_cap - 1;
    }

    std::vector<Retired> rets;
    std::vector<Addr> predNexts;
    std::vector<u8> flagBits;
    u64 head = 0;
    u64 count = 0;
    u64 mask = 0;
};

} // namespace icicle

#endif // ICICLE_CORE_PIPEBUF_HH
