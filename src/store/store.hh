/**
 * @file
 * icestore: a compressed, block-indexed, seekable trace container.
 *
 * The in-memory Trace keeps one raw u64 per cycle and every analyzer
 * query scans every cycle; that caps traces at RAM and makes narrow
 * window queries O(total cycles). The icestore format (.icst) chunks
 * cycles into fixed-size blocks, transposes each block into per-field
 * bit-planes, and run-length encodes each plane with varints — event
 * bits are bursty (Recovering and I$-blocked arrive in runs, fetch
 * bubbles in stretches; the Fig. 8 structure), so planes compress by
 * an order of magnitude. A per-block footer carries per-field
 * popcounts, first/last-set cycles and a CRC32, and a file-level
 * footer index gives O(log n) seek to any cycle; queries that only
 * need counts are served from footers without decoding a single
 * plane, so a windowed TMA recomputation touches O(blocks) not
 * O(cycles).
 *
 * Writer side: StoreWriter implements TraceSink, the streaming
 * interface Session/core capture feeds one packed word per cycle.
 * Peak memory is one block buffer (blockCycles * 8 bytes) regardless
 * of trace length — billion-cycle captures run in bounded memory.
 * Output lands via AtomicFile (tmp + fsync + rename), so a crashed
 * capture never leaves a half-written .icst behind.
 *
 * Reader side: corruption raises typed StoreErrors (a FatalError
 * subclass, so embedders and the CLI keep their existing handling),
 * and StoreOpen::Salvage recovers every block whose CRC still
 * verifies from a truncated or corrupted file — valid-window queries
 * keep working and damage() reports exactly what was lost (DESIGN.md
 * §11).
 *
 * On-disk layout (all integers little-endian; see DESIGN.md §9):
 *
 *   header:   magic, version, numFields, blockCycles,
 *             numFields x { event u32, lane u32 },
 *             crc32 u32 over the preceding header bytes (v2+)
 *   blocks:   numCycles u32,
 *             per field: varint planeBytes + alternating varint run
 *             lengths (starting with a zeros run, summing to
 *             numCycles),
 *             footer: per field { popcount u64, firstSet u32,
 *             lastSet u32 }, crc32 u32 over the whole block record
 *   index:    numBlocks u32, per block { offset u64, startCycle u64,
 *             numCycles u32 }, totalCycles u64, crc32 u32
 *   trailer:  indexOffset u64, trailer magic u32
 */

#ifndef ICICLE_STORE_STORE_HH
#define ICICLE_STORE_STORE_HH

#include <atomic>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/sync.hh"
#include "fault/atomic_file.hh"
#include "trace/trace.hh"

namespace icicle
{

constexpr u32 kStoreMagic = 0x49435354;        // "ICST"
constexpr u32 kStoreTrailerMagic = 0x54534349; // reversed
/** v2 appends a header CRC32; v1 files are still read. */
constexpr u32 kStoreVersion = 2;
/** Default cycles per block: 64K cycles = 512 KiB of raw words. */
constexpr u32 kStoreDefaultBlockCycles = 1u << 16;

/** What part of a store an error was detected in. */
enum class StoreErrorKind : u8
{
    Io,            ///< open/read/write syscall failure
    Header,        ///< bad magic/version/field table/header CRC
    Index,         ///< bad footer index or trailer
    Block,         ///< bad block record (CRC, framing, run sums)
    DamagedWindow, ///< salvage query touched a damaged region
    Unrecoverable, ///< salvage found nothing trustworthy to recover
};

const char *storeErrorKindName(StoreErrorKind kind);

/**
 * Typed store corruption/IO error. Subclasses FatalError so existing
 * catch sites (CLI exit 2, EXPECT_THROW in tests) keep working while
 * salvage-aware callers can dispatch on kind().
 */
class StoreError : public FatalError
{
  public:
    StoreError(StoreErrorKind kind, const std::string &msg)
        : FatalError(msg), errorKind(kind)
    {}

    StoreErrorKind kind() const { return errorKind; }

  private:
    StoreErrorKind errorKind;
};

/** How strictly StoreReader treats a damaged file. */
enum class StoreOpen : u8
{
    Strict,  ///< any corruption throws (the historical behavior)
    Salvage, ///< recover every CRC-valid block, expose a damage mask
};

/**
 * Streaming consumer of packed trace words, one per cycle. The
 * capture loop feeds append(); finish() seals the container. Both
 * StoreWriter and test doubles implement it.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Feed one packed cycle word (bit f = field f of the spec). */
    virtual void append(u64 word) = 0;
    /**
     * Feed a batch of packed cycle words. Equivalent to append() in
     * a loop (the default); sinks with cheap bulk paths may override.
     */
    virtual void
    appendBlock(const u64 *words, u64 count)
    {
        for (u64 i = 0; i < count; i++)
            append(words[i]);
    }
    /** Flush buffered cycles and seal the output. Idempotent. */
    virtual void finish() = 0;
};

/**
 * Writes an .icst file from a stream of packed cycle words. The
 * output is a pure function of (spec, blockCycles, word sequence):
 * no timestamps or platform state, so stores from identical runs are
 * byte-identical — the property the sweep engine's determinism
 * guarantee extends to `--trace-out`. The file is committed
 * atomically on finish(); a crash mid-capture leaves only a `.tmp`.
 */
class StoreWriter : public TraceSink
{
  public:
    /** block_cycles 0 selects kStoreDefaultBlockCycles. */
    StoreWriter(const TraceSpec &spec, const std::string &path,
                u32 block_cycles = kStoreDefaultBlockCycles);
    ~StoreWriter() override;

    void append(u64 word) override;
    void finish() override;

    u64 cyclesWritten() const { return totalCycles; }
    /** Cycles currently buffered (always <= blockCycles()). */
    u32 bufferedCycles() const
    { return static_cast<u32>(buffer.size()); }
    /** High-water mark of bufferedCycles() over the writer's life. */
    u32 peakBufferedCycles() const { return peakBuffered; }
    u32 blockCycles() const { return cyclesPerBlock; }

  private:
    void flushBlock(bool torn);

    TraceSpec traceSpec;
    std::string filePath;
    AtomicFile out;
    u32 cyclesPerBlock;
    std::vector<u64> buffer;
    struct IndexEntry
    {
        u64 offset = 0;
        u64 startCycle = 0;
        u32 numCycles = 0;
    };
    std::vector<IndexEntry> index;
    u64 totalCycles = 0;
    u32 peakBuffered = 0;
    bool sealed = false;
};

/** A half-open interval of set cycles, block-relative. */
struct SetInterval
{
    u32 start = 0;
    u32 length = 0;
};

/**
 * The damage mask of a salvage-opened store: which blocks survived
 * CRC verification, which cycle ranges are gone, and whether the
 * footer index itself was trustworthy. A Strict open that succeeds is
 * always clean().
 */
struct StoreDamage
{
    struct DamagedBlock
    {
        u32 block = 0;
        u64 startCycle = 0;
        u32 numCycles = 0;
    };

    /** Opened via StoreOpen::Salvage. */
    bool salvaged = false;
    /** Trailer + footer index passed validation. */
    bool indexValid = true;
    u64 recoveredBlocks = 0;
    u64 recoveredCycles = 0;
    u64 damagedCycles = 0;
    /** Tail bytes no block record could be parsed from. */
    u64 trailingBytes = 0;
    /** Blocks present in geometry but failing CRC/framing. */
    std::vector<DamagedBlock> damaged;

    bool
    clean() const
    {
        return damaged.empty() && trailingBytes == 0 && indexValid;
    }

    /** The `icicle-trace salvage` damage-report body. */
    std::string toJson(const std::string &path) const;
};

/**
 * Random-access reader over an .icst file. Footer metadata (per-field
 * popcounts, first/last-set cycles) is loaded once at open; queries
 * that full blocks can answer from metadata never decode a plane.
 * blocksDecoded() counts the blocks whose planes were actually
 * decoded — the sublinear-query evidence bench_trace_store reports.
 *
 * StoreOpen::Strict throws a typed StoreError on any corruption.
 * StoreOpen::Salvage recovers every CRC-valid block: whole-store
 * aggregates (count/countAllLanes/runsOfAny/recoveryCdf) skip
 * damaged blocks, window queries over intact ranges work normally,
 * and window queries touching a damaged range throw
 * StoreErrorKind::DamagedWindow — consult damage() for the mask.
 *
 * Const queries are safe to call from multiple threads on one
 * reader: the file handle and the single-block decode cache are the
 * only mutable state, and both sit behind an internal mutex (the
 * cache hands out shared_ptrs, so an entry a thread is still reading
 * survives eviction by another). icicled serves concurrent windowed
 * TMA queries over one open reader per store on this guarantee.
 */
class StoreReader
{
  public:
    explicit StoreReader(const std::string &path,
                         StoreOpen open = StoreOpen::Strict);

    const TraceSpec &spec() const { return traceSpec; }
    u64 numCycles() const { return totalCycles; }
    u32 blockCycles() const { return cyclesPerBlock; }
    u32 numBlocks() const
    { return static_cast<u32>(blocks.size()); }
    /** Size of the container on disk. */
    u64 fileBytes() const { return fileSize; }
    /** Raw in-memory footprint of the same trace (8 B / cycle). */
    u64 rawBytes() const { return totalCycles * 8; }

    /** The damage mask (clean() unless salvage found damage). */
    const StoreDamage &damage() const { return damageInfo; }

    /** Decode the whole store into an in-memory Trace. */
    Trace readAll() const;
    /** Decode cycles [begin, end) into an in-memory Trace. */
    Trace readWindow(u64 begin, u64 end) const;

    /** Cycles where (event, lane) is high — footer-only. */
    u64 count(EventId event, u8 lane = 0) const;
    /** Sum over all traced lanes — footer-only. */
    u64 countAllLanes(EventId event) const;
    /**
     * Sum over all traced lanes within [begin, end). Full interior
     * blocks are served from footer popcounts; only boundary blocks
     * decode.
     */
    u64 countInWindow(EventId event, u64 begin, u64 end) const;

    /**
     * Temporal TMA over a window, matching
     * TraceAnalyzer::windowTma exactly (same validation, same
     * Table II model) while decoding only boundary blocks.
     */
    TmaResult windowTma(u64 begin, u64 end, u32 core_width) const;
    /** As above, with full model-parameter control (TMA-005 flag). */
    TmaResult windowTma(u64 begin, u64 end,
                        const TmaParams &params) const;

    /**
     * Contiguous runs where any traced lane of the event is high.
     * All-zero blocks (footer popcount 0) extend the current gap and
     * all-one blocks extend the current run without decoding.
     */
    std::vector<SignalRun> runsOfAny(EventId event) const;

    /** Fig. 8b recovery CDF, matching TraceAnalyzer::recoveryCdf. */
    RecoveryCdf recoveryCdf() const;

    /** Table VI overlap bound, matching TraceAnalyzer exactly. */
    OverlapBound overlapUpperBound(u32 core_width, u32 pad = 50) const;

    /** CRC-check every block payload; StoreError on corruption. */
    void verify() const;

    /**
     * Re-stream every recovered (CRC-valid) block into a fresh,
     * fully-sealed store at `path`, renumbering cycles contiguously
     * when interior blocks were lost. Returns cycles written. This is
     * what `icicle-trace salvage` emits next to its damage report.
     */
    u64 writeRepaired(const std::string &path) const;

    /**
     * Read-side invariant hook: decode cycles [begin, end) one block
     * at a time and call fn(cycle, packed word) for each — bounded
     * memory regardless of window length. The trace-invariant
     * verifier (src/prove/trace_check.cc) replays stores through this
     * to check per-cycle event implications without materializing the
     * trace.
     */
    void forEachCycleWord(
        u64 begin, u64 end,
        const std::function<void(u64, u64)> &fn) const;

    /** Blocks whose planes were decoded since construction. */
    u64 blocksDecoded() const
    { return decodedBlocks.load(std::memory_order_relaxed); }

  private:
    struct FieldMeta
    {
        u64 popcount = 0;
        u32 firstSet = 0;
        u32 lastSet = 0;
    };
    struct BlockMeta
    {
        u64 offset = 0;     // file offset of the block record
        u64 payloadEnd = 0; // offset of the block footer
        u64 startCycle = 0;
        u32 numCycles = 0;
        bool damaged = false; // salvage: CRC/framing failed
        std::vector<FieldMeta> fields;
    };

    /** Decoded bit-planes of one block, as set-interval lists. */
    struct DecodedBlock
    {
        u32 blockIndex = 0;
        bool valid = false;
        std::vector<std::vector<SetInterval>> planes;
    };

    // The open path runs inside the constructor, before the reader
    // can be shared: it reads `in` without ioMutex on purpose, which
    // the thread-safety analysis has no "not yet published" notion
    // for — hence the explicit opt-outs.
    u64 openHeader() ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    void openStrict(u64 data_begin) ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    void openSalvage(u64 data_begin)
        ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    bool loadIndexedBlocks(u64 data_begin, bool strict)
        ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    void scanBlocks(u64 data_begin) ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    void loadBlockFooter(BlockMeta &block, u32 block_id, bool strict)
        ICICLE_NO_THREAD_SAFETY_ANALYSIS;
    /** Throw DamagedWindow if [begin, end) touches damaged blocks. */
    void requireIntact(u64 begin, u64 end, const char *what) const;

    std::shared_ptr<const DecodedBlock>
    decodeBlock(u32 block_index) const;
    u64 countPlaneInRange(const std::vector<SetInterval> &plane,
                          u32 lo, u32 hi) const;
    /** Block index containing the cycle (binary search). */
    u32 blockOf(u64 cycle) const;

    std::string filePath;
    /** Guards `in` and `cache`; everything else is immutable after
     * open. Held for the whole read+decode of a block, so two
     * threads never interleave seeks on the shared stream. */
    mutable Mutex ioMutex{"store.io", lockrank::kStoreIo};
    mutable std::ifstream in ICICLE_GUARDED_BY(ioMutex);
    TraceSpec traceSpec;
    StoreOpen openMode = StoreOpen::Strict;
    u32 formatVersion = kStoreVersion;
    u32 cyclesPerBlock = 0;
    u64 totalCycles = 0;
    u64 fileSize = 0;
    std::vector<BlockMeta> blocks;
    StoreDamage damageInfo;
    mutable std::shared_ptr<const DecodedBlock> cache
        ICICLE_GUARDED_BY(ioMutex);
    mutable std::atomic<u64> decodedBlocks{0};
};

/**
 * Convenience: run a core while streaming the given bundle straight
 * into an .icst file. The in-memory trace is never materialized;
 * peak capture memory is one block buffer. Returns cycles simulated.
 */
u64 streamTraceToStore(Core &core, const TraceSpec &spec,
                       u64 max_cycles, const std::string &path,
                       u32 block_cycles = kStoreDefaultBlockCycles);

} // namespace icicle

#endif // ICICLE_STORE_STORE_HH
