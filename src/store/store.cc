#include "store/store.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "core/session.hh"
#include "fault/fault.hh"

namespace icicle
{

namespace
{

// ---- little-endian scalar + varint codec ----------------------------

void
putBytes(std::string &buf, const void *data, std::size_t len)
{
    buf.append(static_cast<const char *>(data), len);
}

void
put32(std::string &buf, u32 v)
{
    putBytes(buf, &v, 4);
}

void
put64(std::string &buf, u64 v)
{
    putBytes(buf, &v, 8);
}

/** LEB128 unsigned varint. */
void
putVarint(std::string &buf, u64 v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

/** Throw a typed StoreError (a FatalError carrying its kind). */
template <typename... Args>
[[noreturn]] void
storeFatal(StoreErrorKind kind, const Args &...args)
{
    throw StoreError(kind, detail::format(args...));
}

/** Cursor over a byte buffer with truncation checks. */
struct ByteCursor
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;
    const char *path;
    StoreErrorKind kind = StoreErrorKind::Block;

    void
    need(std::size_t n, const char *what) const
    {
        if (pos + n > size)
            storeFatal(kind, "corrupt trace store ", path,
                       ": truncated ", what);
    }

    u32
    get32(const char *what)
    {
        need(4, what);
        u32 v;
        std::memcpy(&v, data + pos, 4);
        pos += 4;
        return v;
    }

    u64
    get64(const char *what)
    {
        need(8, what);
        u64 v;
        std::memcpy(&v, data + pos, 8);
        pos += 8;
        return v;
    }

    u64
    getVarint(const char *what)
    {
        u64 v = 0;
        u32 shift = 0;
        for (;;) {
            need(1, what);
            const unsigned char byte = data[pos++];
            if (shift >= 64)
                storeFatal(kind, "corrupt trace store ", path,
                           ": oversized varint in ", what);
            v |= static_cast<u64>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
        }
    }
};

/** Per-field footer entry size: popcount u64 + firstSet/lastSet u32. */
constexpr u64 kFieldMetaBytes = 16;
constexpr u32 kNoSetCycle = 0xffffffffu;

u64
blockFooterBytes(u32 num_fields)
{
    return static_cast<u64>(num_fields) * kFieldMetaBytes + 4;
}

/** Seek + full read; false (with stream cleared) on short read. */
bool
readExact(std::ifstream &in, u64 offset, void *dst, u64 len)
{
    in.clear();
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(static_cast<char *>(dst),
            static_cast<std::streamsize>(len));
    const bool ok = static_cast<bool>(in);
    if (!ok)
        in.clear();
    return ok;
}

void
jsonEscapeTo(std::ostringstream &os, const std::string &text)
{
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                os << hex;
            } else {
                os << c;
            }
        }
    }
}

/** Merge-union of sorted absolute intervals (start, end pairs). */
std::vector<std::pair<u64, u64>>
mergeIntervals(std::vector<std::pair<u64, u64>> spans)
{
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<u64, u64>> merged;
    for (const auto &[a, b] : spans) {
        if (!merged.empty() && a <= merged.back().second)
            merged.back().second = std::max(merged.back().second, b);
        else
            merged.emplace_back(a, b);
    }
    return merged;
}

/** Intersection of two sorted disjoint interval lists. */
std::vector<std::pair<u64, u64>>
intersectIntervals(const std::vector<std::pair<u64, u64>> &lhs,
                   const std::vector<std::pair<u64, u64>> &rhs)
{
    std::vector<std::pair<u64, u64>> out;
    std::size_t i = 0, j = 0;
    while (i < lhs.size() && j < rhs.size()) {
        const u64 a = std::max(lhs[i].first, rhs[j].first);
        const u64 b = std::min(lhs[i].second, rhs[j].second);
        if (a < b)
            out.emplace_back(a, b);
        if (lhs[i].second < rhs[j].second)
            i++;
        else
            j++;
    }
    return out;
}

} // namespace

const char *
storeErrorKindName(StoreErrorKind kind)
{
    switch (kind) {
      case StoreErrorKind::Io: return "io";
      case StoreErrorKind::Header: return "header";
      case StoreErrorKind::Index: return "index";
      case StoreErrorKind::Block: return "block";
      case StoreErrorKind::DamagedWindow: return "damaged-window";
      case StoreErrorKind::Unrecoverable: return "unrecoverable";
      default: return "?";
    }
}

std::string
StoreDamage::toJson(const std::string &path) const
{
    std::ostringstream os;
    os << "{\n  \"file\": \"";
    jsonEscapeTo(os, path);
    os << "\",\n  \"salvaged\": " << (salvaged ? "true" : "false")
       << ",\n  \"clean\": " << (clean() ? "true" : "false")
       << ",\n  \"index_valid\": " << (indexValid ? "true" : "false")
       << ",\n  \"recovered_blocks\": " << recoveredBlocks
       << ",\n  \"recovered_cycles\": " << recoveredCycles
       << ",\n  \"damaged_blocks\": " << damaged.size()
       << ",\n  \"damaged_cycles\": " << damagedCycles
       << ",\n  \"trailing_bytes\": " << trailingBytes
       << ",\n  \"damaged\": [";
    for (std::size_t i = 0; i < damaged.size(); i++) {
        const DamagedBlock &block = damaged[i];
        os << (i ? "," : "") << "\n    {\"block\": " << block.block
           << ", \"start_cycle\": " << block.startCycle
           << ", \"num_cycles\": " << block.numCycles << "}";
    }
    os << (damaged.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

// --------------------------------------------------------- StoreWriter

StoreWriter::StoreWriter(const TraceSpec &spec,
                         const std::string &path, u32 block_cycles)
    : traceSpec(spec), filePath(path),
      out(path, FaultSite::StoreWrite),
      cyclesPerBlock(block_cycles ? block_cycles
                                  : kStoreDefaultBlockCycles)
{
    buffer.reserve(cyclesPerBlock);
    std::string header;
    put32(header, kStoreMagic);
    put32(header, kStoreVersion);
    put32(header, traceSpec.numFields());
    put32(header, cyclesPerBlock);
    for (const TraceField &field : traceSpec.fields) {
        put32(header, static_cast<u32>(field.event));
        put32(header, field.lane);
    }
    // v2: the header guards itself, so salvage can tell "damaged
    // data" apart from "untrustworthy spec".
    put32(header, crc32(header.data(), header.size()));
    out.append(header);
}

StoreWriter::~StoreWriter()
{
    // Seal on destruction so scope-exit always yields a valid file;
    // errors here surface as warnings (destructors must not throw).
    try {
        finish();
    } catch (const std::exception &err) {
        warn("trace store ", filePath, " not sealed: ", err.what());
    }
}

void
StoreWriter::append(u64 word)
{
    if (sealed)
        fatal("trace store ", filePath,
              ": append after finish()");
    buffer.push_back(word);
    peakBuffered =
        std::max(peakBuffered, static_cast<u32>(buffer.size()));
    totalCycles++;
    if (buffer.size() >= cyclesPerBlock)
        flushBlock(false);
}

void
StoreWriter::flushBlock(bool torn)
{
    const u32 cycles = static_cast<u32>(buffer.size());
    const u32 num_fields = traceSpec.numFields();

    IndexEntry entry;
    entry.offset = out.size();
    entry.startCycle = totalCycles - cycles;
    entry.numCycles = cycles;
    index.push_back(entry);

    // One pass over the words finds every bit transition; runs are
    // then reconstructed per field from its transition cycles. Cost
    // is O(cycles + transitions), not O(cycles x fields) — bursty
    // signals have few transitions.
    std::vector<std::vector<u32>> transitions(num_fields);
    u64 prev = 0;
    for (u32 c = 0; c < cycles; c++) {
        u64 flipped = buffer[c] ^ prev;
        while (flipped) {
            const int f = std::countr_zero(flipped);
            flipped &= flipped - 1;
            if (static_cast<u32>(f) < num_fields)
                transitions[f].push_back(c);
        }
        prev = buffer[c];
    }
    // Close any run still high at the block's end.
    for (u32 f = 0; f < num_fields; f++) {
        if (cycles && (buffer[cycles - 1] >> f) & 1)
            transitions[f].push_back(cycles);
    }

    std::string record;
    put32(record, cycles);
    std::string footer;
    for (u32 f = 0; f < num_fields; f++) {
        const std::vector<u32> &edges = transitions[f];
        // Alternating run lengths, zeros first: the plane starts low
        // (prev = 0), so edges[0] is the initial zeros run (possibly
        // 0), and consecutive edge deltas alternate ones/zeros runs.
        std::string plane;
        u64 popcount = 0;
        if (edges.empty()) {
            putVarint(plane, cycles); // all-zero plane
        } else {
            putVarint(plane, edges[0]);
            for (std::size_t e = 1; e < edges.size(); e++) {
                const u32 run = edges[e] - edges[e - 1];
                putVarint(plane, run);
                if (e % 2 == 1)
                    popcount += run;
            }
            if (edges.back() < cycles)
                putVarint(plane, cycles - edges.back());
        }
        putVarint(record, plane.size());
        record += plane;

        put64(footer, popcount);
        put32(footer, edges.empty() ? kNoSetCycle : edges[0]);
        put32(footer, edges.empty() ? kNoSetCycle : edges.back() - 1);
    }
    record += footer;
    const u32 crc = crc32(record.data(), record.size());
    put32(record, crc);

    // Fault hooks: a bitflip clause corrupts this block's payload
    // after its CRC was computed; a torn final block writes only half
    // its record (a crash mid-block).
    faultPlan().corruptStoreBlock(index.size() - 1, record);
    if (torn)
        out.append(record.data(), record.size() / 2);
    else
        out.append(record);
    buffer.clear();
}

void
StoreWriter::finish()
{
    if (sealed)
        return;
    sealed = true;

    const bool torn = faultPlan().tornFinalStore();
    if (!buffer.empty())
        flushBlock(torn);
    if (torn) {
        // Seal the torn artifact without its index/trailer — exactly
        // what a crash between the data and index writes leaves.
        out.commit();
        return;
    }

    std::string tail;
    const u64 index_offset = out.size();
    put32(tail, static_cast<u32>(index.size()));
    for (const IndexEntry &entry : index) {
        put64(tail, entry.offset);
        put64(tail, entry.startCycle);
        put32(tail, entry.numCycles);
    }
    put64(tail, totalCycles);
    const u32 crc = crc32(tail.data(), tail.size());
    put32(tail, crc);
    put64(tail, index_offset);
    put32(tail, kStoreTrailerMagic);
    out.append(tail);
    out.commit();
}

// --------------------------------------------------------- StoreReader

StoreReader::StoreReader(const std::string &path, StoreOpen open)
    : filePath(path), in(path, std::ios::binary), openMode(open)
{
    if (!in)
        storeFatal(StoreErrorKind::Io, "cannot open trace store: ",
                   path);
    in.seekg(0, std::ios::end);
    fileSize = static_cast<u64>(in.tellg());

    const u64 data_begin = openHeader();
    if (openMode == StoreOpen::Strict)
        openStrict(data_begin);
    else
        openSalvage(data_begin);
}

u64
StoreReader::openHeader()
{
    // A header failure leaves nothing to salvage: without a trusted
    // field table every decoded bit would be misattributed.
    const StoreErrorKind kind = openMode == StoreOpen::Strict
                                    ? StoreErrorKind::Header
                                    : StoreErrorKind::Unrecoverable;

    u32 head[4];
    if (fileSize < sizeof(head))
        storeFatal(kind, "not an Icicle trace store (too short): ",
                   filePath);
    if (!readExact(in, 0, head, sizeof(head)))
        storeFatal(kind, "corrupt trace store ", filePath,
                   ": truncated header");
    if (head[0] != kStoreMagic)
        storeFatal(kind, "not an Icicle trace store: ", filePath);
    if (head[1] == 0 || head[1] > kStoreVersion)
        storeFatal(kind, "unsupported trace store version ", head[1],
                   " in ", filePath);
    formatVersion = head[1];
    const u32 num_fields = head[2];
    cyclesPerBlock = head[3];
    if (num_fields > 64)
        storeFatal(kind, "corrupt trace store ", filePath, ": ",
                   num_fields,
                   " fields (trace bundles are limited to 64 signals)");
    if (cyclesPerBlock == 0)
        storeFatal(kind, "corrupt trace store ", filePath,
                   ": zero block size");

    const u64 table_bytes = static_cast<u64>(num_fields) * 8;
    u64 data_begin = 16 + table_bytes;
    if (formatVersion >= 2)
        data_begin += 4;
    if (fileSize < data_begin)
        storeFatal(kind, "corrupt trace store ", filePath,
                   ": truncated field table");

    std::vector<unsigned char> table(table_bytes);
    if (table_bytes &&
        !readExact(in, 16, table.data(), table_bytes))
        storeFatal(kind, "corrupt trace store ", filePath,
                   ": truncated field table");
    if (formatVersion >= 2) {
        u32 stored_crc;
        if (!readExact(in, 16 + table_bytes, &stored_crc, 4))
            storeFatal(kind, "corrupt trace store ", filePath,
                       ": truncated header CRC");
        Crc32 crc;
        crc.update(head, sizeof(head));
        crc.update(table.data(), table_bytes);
        if (crc.value() != stored_crc)
            storeFatal(kind, "corrupt trace store ", filePath,
                       ": header CRC mismatch");
    }

    for (u32 f = 0; f < num_fields; f++) {
        u32 pair[2];
        std::memcpy(pair, table.data() + static_cast<u64>(f) * 8, 8);
        if (pair[0] >= kNumEvents)
            storeFatal(kind, "corrupt trace store ", filePath,
                       ": field ", f, " has out-of-range event id ",
                       pair[0]);
        if (pair[1] >= kMaxSources)
            storeFatal(kind, "corrupt trace store ", filePath,
                       ": field ", f, " has out-of-range lane ",
                       pair[1]);
        const EventId id = static_cast<EventId>(pair[0]);
        if (traceSpec.indexOf(id, static_cast<u8>(pair[1])) >= 0)
            storeFatal(kind, "corrupt trace store ", filePath,
                       ": field ", f, " duplicates (", eventName(id),
                       ", lane ", pair[1], ")");
        traceSpec.fields.push_back(
            TraceField{id, static_cast<u8>(pair[1])});
    }
    return data_begin;
}

void
StoreReader::loadBlockFooter(BlockMeta &block, u32 block_id,
                             bool strict)
{
    const u32 num_fields = traceSpec.numFields();
    const u64 meta_bytes = blockFooterBytes(num_fields) - 4;
    std::vector<unsigned char> raw(meta_bytes);
    if (meta_bytes &&
        !readExact(in, block.payloadEnd, raw.data(), meta_bytes))
        storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                   filePath, ": truncated block footer");
    ByteCursor meta{raw.data(), raw.size(), 0, filePath.c_str(),
                    StoreErrorKind::Block};
    block.fields.resize(num_fields);
    for (u32 f = 0; f < num_fields; f++) {
        FieldMeta &fm = block.fields[f];
        fm.popcount = meta.get64("block footer");
        fm.firstSet = meta.get32("block footer");
        fm.lastSet = meta.get32("block footer");
        if (fm.popcount > block.numCycles) {
            if (strict)
                storeFatal(StoreErrorKind::Block,
                           "corrupt trace store ", filePath,
                           ": block ", block_id, " field ", f,
                           " popcount ", fm.popcount, " exceeds ",
                           block.numCycles, " cycles");
            block.damaged = true;
            block.fields.assign(num_fields, FieldMeta{});
            return;
        }
    }
}

bool
StoreReader::loadIndexedBlocks(u64 data_begin, bool strict)
{
    const auto bad = [&](const auto &...args) -> bool {
        if (strict)
            storeFatal(StoreErrorKind::Index, args...);
        return false;
    };

    // ---- trailer + footer index ----
    if (fileSize < data_begin + 12)
        return bad("corrupt trace store ", filePath,
                   ": truncated trailer");
    unsigned char trailer[12];
    if (!readExact(in, fileSize - 12, trailer, 12))
        return bad("corrupt trace store ", filePath,
                   ": truncated trailer");
    u64 index_offset;
    u32 trailer_magic;
    std::memcpy(&index_offset, trailer, 8);
    std::memcpy(&trailer_magic, trailer + 8, 4);
    if (trailer_magic != kStoreTrailerMagic)
        return bad("corrupt trace store ", filePath,
                   ": bad trailer magic (file truncated or not "
                   "sealed)");
    if (index_offset < data_begin || index_offset >= fileSize - 12)
        return bad("corrupt trace store ", filePath,
                   ": bad index offset");
    const u64 index_bytes = fileSize - 12 - index_offset;
    std::vector<unsigned char> index_raw(index_bytes);
    if (!readExact(in, index_offset, index_raw.data(), index_bytes))
        return bad("corrupt trace store ", filePath,
                   ": truncated footer index");
    if (index_bytes < 4 + 8 + 4)
        return bad("corrupt trace store ", filePath,
                   ": footer index too small");
    u32 stored_crc;
    std::memcpy(&stored_crc, index_raw.data() + index_bytes - 4, 4);
    if (crc32(index_raw.data(), index_bytes - 4) != stored_crc)
        return bad("corrupt trace store ", filePath,
                   ": footer index CRC mismatch");

    const u32 num_fields = traceSpec.numFields();
    ByteCursor cur{index_raw.data(), index_bytes - 4, 0,
                   filePath.c_str(), StoreErrorKind::Index};
    const u32 num_blocks = cur.get32("footer index");
    const u64 footer_bytes = blockFooterBytes(num_fields);
    blocks.resize(num_blocks);
    for (u32 b = 0; b < num_blocks; b++) {
        BlockMeta &block = blocks[b];
        block.offset = cur.get64("footer index");
        block.startCycle = cur.get64("footer index");
        block.numCycles = cur.get32("footer index");
        if (block.numCycles == 0 || block.numCycles > cyclesPerBlock)
            return bad("corrupt trace store ", filePath, ": block ",
                       b, " has bad cycle count ", block.numCycles);
        const u64 expected_start =
            static_cast<u64>(b) * cyclesPerBlock;
        if (block.startCycle != expected_start)
            return bad("corrupt trace store ", filePath, ": block ",
                       b, " starts at cycle ", block.startCycle,
                       ", expected ", expected_start);
        if (b + 1 < num_blocks && block.numCycles != cyclesPerBlock)
            return bad("corrupt trace store ", filePath,
                       ": interior block ", b, " is short");
    }
    totalCycles = cur.get64("footer index");
    const u64 tallied = num_blocks == 0
                            ? 0
                            : blocks.back().startCycle +
                                  blocks.back().numCycles;
    if (totalCycles != tallied)
        return bad("corrupt trace store ", filePath,
                   ": index claims ", totalCycles,
                   " cycles but blocks cover ", tallied);

    // ---- per-block footers (popcounts, first/last-set, bounds) ----
    std::vector<unsigned char> record;
    for (u32 b = 0; b < num_blocks; b++) {
        BlockMeta &block = blocks[b];
        const u64 block_end =
            b + 1 < num_blocks ? blocks[b + 1].offset : index_offset;
        if (block.offset < data_begin ||
            block.offset + 4 + footer_bytes > block_end)
            return bad("corrupt trace store ", filePath, ": block ",
                       b, " record is too small");
        block.payloadEnd = block_end - footer_bytes;
        if (strict) {
            // Strict open trusts block CRCs lazily (checked when the
            // block is first decoded), exactly as before.
            loadBlockFooter(block, b, true);
            continue;
        }
        // Salvage: verify every block's CRC up front so the damage
        // mask is complete at open.
        const u64 record_bytes = block_end - block.offset;
        record.resize(record_bytes);
        if (!readExact(in, block.offset, record.data(), record_bytes))
            return bad("corrupt trace store ", filePath,
                       ": truncated block ", b);
        u32 block_crc;
        std::memcpy(&block_crc, record.data() + record_bytes - 4, 4);
        if (crc32(record.data(), record_bytes - 4) != block_crc) {
            block.damaged = true;
            block.fields.assign(num_fields, FieldMeta{});
        } else {
            loadBlockFooter(block, b, false);
        }
    }
    return true;
}

void
StoreReader::scanBlocks(u64 data_begin)
{
    // No trustworthy index: walk block records from the front and
    // keep every one whose framing parses and CRC verifies. The scan
    // stops at the first damaged record — framing beyond a corrupt
    // record cannot be trusted — so this path recovers the CRC-valid
    // prefix (the whole data section for a torn/unsealed file).
    const u32 num_fields = traceSpec.numFields();
    const u64 footer_bytes = blockFooterBytes(num_fields);
    std::vector<unsigned char> raw(fileSize);
    if (fileSize && !readExact(in, 0, raw.data(), fileSize))
        storeFatal(StoreErrorKind::Io, "cannot read trace store: ",
                   filePath);

    const auto try_varint = [&](u64 &pos, u64 &value) -> bool {
        value = 0;
        u32 shift = 0;
        for (;;) {
            if (pos >= fileSize || shift >= 64)
                return false;
            const unsigned char byte = raw[pos++];
            value |= static_cast<u64>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return true;
            shift += 7;
        }
    };

    u64 pos = data_begin;
    while (true) {
        const u64 record_start = pos;
        if (record_start + 4 > fileSize)
            break;
        u32 cycles;
        std::memcpy(&cycles, raw.data() + record_start, 4);
        if (cycles == 0 || cycles > cyclesPerBlock)
            break;
        u64 p = record_start + 4;
        bool framed = true;
        for (u32 f = 0; f < num_fields && framed; f++) {
            u64 plane_bytes;
            if (!try_varint(p, plane_bytes) ||
                plane_bytes > fileSize - p)
                framed = false;
            else
                p += plane_bytes;
        }
        if (!framed || footer_bytes > fileSize - p)
            break;
        const u64 payload_end = p;
        const u64 record_end = p + footer_bytes;
        u32 stored_crc;
        std::memcpy(&stored_crc, raw.data() + record_end - 4, 4);
        const bool crc_ok =
            crc32(raw.data() + record_start,
                  record_end - 4 - record_start) == stored_crc;

        BlockMeta block;
        block.offset = record_start;
        block.payloadEnd = payload_end;
        block.startCycle =
            static_cast<u64>(blocks.size()) * cyclesPerBlock;
        block.numCycles = cycles;
        block.damaged = !crc_ok;
        if (crc_ok) {
            loadBlockFooter(block, static_cast<u32>(blocks.size()),
                            false);
        } else {
            block.fields.assign(num_fields, FieldMeta{});
        }
        const bool done = !crc_ok || cycles < cyclesPerBlock;
        blocks.push_back(std::move(block));
        pos = record_end;
        if (done)
            break;
    }
    damageInfo.trailingBytes = fileSize - pos;
    totalCycles = blocks.empty()
                      ? 0
                      : blocks.back().startCycle +
                            blocks.back().numCycles;
}

void
StoreReader::openStrict(u64 data_begin)
{
    loadIndexedBlocks(data_begin, true);
    damageInfo.recoveredBlocks = blocks.size();
    damageInfo.recoveredCycles = totalCycles;
}

void
StoreReader::openSalvage(u64 data_begin)
{
    damageInfo.salvaged = true;
    if (!loadIndexedBlocks(data_begin, false)) {
        damageInfo.indexValid = false;
        blocks.clear();
        totalCycles = 0;
        scanBlocks(data_begin);
    }
    for (u32 b = 0; b < blocks.size(); b++) {
        const BlockMeta &block = blocks[b];
        if (block.damaged) {
            damageInfo.damaged.push_back(StoreDamage::DamagedBlock{
                b, block.startCycle, block.numCycles});
            damageInfo.damagedCycles += block.numCycles;
        } else {
            damageInfo.recoveredBlocks++;
            damageInfo.recoveredCycles += block.numCycles;
        }
    }
}

void
StoreReader::requireIntact(u64 begin, u64 end, const char *what) const
{
    if (damageInfo.damaged.empty() || begin >= end || blocks.empty())
        return;
    for (u32 b = blockOf(begin); b <= blockOf(end - 1); b++) {
        if (!blocks[b].damaged)
            continue;
        storeFatal(StoreErrorKind::DamagedWindow, what, ": cycles [",
                   begin, ", ", end, ") of ", filePath,
                   " overlap damaged block ", b,
                   " (cycles ", blocks[b].startCycle, "..",
                   blocks[b].startCycle + blocks[b].numCycles,
                   "); consult damage() for intact windows");
    }
}

u32
StoreReader::blockOf(u64 cycle) const
{
    // Every block except the last holds exactly cyclesPerBlock
    // cycles (enforced at open), so the block index is a division.
    return static_cast<u32>(
        std::min<u64>(cycle / cyclesPerBlock, blocks.size() - 1));
}

std::shared_ptr<const StoreReader::DecodedBlock>
StoreReader::decodeBlock(u32 block_index) const
{
    // The lock spans cache probe, file read, and cache install: the
    // shared ifstream's seek+read must not interleave across
    // threads. Callers receive a shared_ptr, so a block one thread
    // is still iterating survives another thread's eviction.
    LockGuard lock(ioMutex);
    if (cache && cache->valid && cache->blockIndex == block_index)
        return cache;

    const BlockMeta &block = blocks[block_index];
    if (block.damaged)
        storeFatal(StoreErrorKind::DamagedWindow,
                   "corrupt trace store ", filePath, ": block ",
                   block_index, " is damaged");
    const u64 record_bytes = block.payloadEnd +
                             blockFooterBytes(traceSpec.numFields()) -
                             block.offset;
    std::vector<unsigned char> raw(record_bytes);
    if (!readExact(in, block.offset, raw.data(), record_bytes))
        storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                   filePath, ": truncated block ", block_index);
    u32 stored_crc;
    std::memcpy(&stored_crc, raw.data() + record_bytes - 4, 4);
    if (crc32(raw.data(), record_bytes - 4) != stored_crc)
        storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                   filePath, ": block ", block_index,
                   " CRC mismatch");

    ByteCursor cur{raw.data(), record_bytes - 4, 0, filePath.c_str(),
                   StoreErrorKind::Block};
    const u32 cycles = cur.get32("block");
    if (cycles != block.numCycles)
        storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                   filePath, ": block ", block_index,
                   " cycle count disagrees with index");

    auto decoded = std::make_shared<DecodedBlock>();
    decoded->planes.assign(traceSpec.numFields(), {});
    for (u32 f = 0; f < traceSpec.numFields(); f++) {
        const u64 plane_bytes = cur.getVarint("block plane");
        cur.need(plane_bytes, "block plane");
        ByteCursor plane{raw.data() + cur.pos, plane_bytes, 0,
                         filePath.c_str(), StoreErrorKind::Block};
        cur.pos += plane_bytes;
        u64 at = 0;
        bool ones = false;
        while (at < cycles) {
            const u64 run = plane.getVarint("block plane run");
            if (run > cycles - at)
                storeFatal(StoreErrorKind::Block,
                           "corrupt trace store ", filePath,
                           ": block ", block_index, " field ", f,
                           " runs exceed the block");
            if (ones && run)
                decoded->planes[f].push_back(SetInterval{
                    static_cast<u32>(at), static_cast<u32>(run)});
            at += run;
            ones = !ones;
        }
        if (plane.pos != plane.size)
            storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                       filePath, ": block ", block_index, " field ",
                       f, " has trailing bytes");
    }
    decoded->blockIndex = block_index;
    decoded->valid = true;
    cache = decoded;
    decodedBlocks.fetch_add(1, std::memory_order_relaxed);
    return decoded;
}

u64
StoreReader::countPlaneInRange(const std::vector<SetInterval> &plane,
                               u32 lo, u32 hi) const
{
    u64 total = 0;
    for (const SetInterval &iv : plane) {
        const u32 a = std::max(lo, iv.start);
        const u32 b = std::min(hi, iv.start + iv.length);
        if (a < b)
            total += b - a;
    }
    return total;
}

Trace
StoreReader::readAll() const
{
    return readWindow(0, totalCycles);
}

Trace
StoreReader::readWindow(u64 begin, u64 end) const
{
    Trace trace(traceSpec);
    end = std::min(end, totalCycles);
    if (begin >= end)
        return trace;
    requireIntact(begin, end, "StoreReader::readWindow");
    std::vector<u64> words;
    for (u32 b = blockOf(begin); b <= blockOf(end - 1); b++) {
        const BlockMeta &block = blocks[b];
        const u64 lo = std::max(begin, block.startCycle);
        const u64 hi =
            std::min(end, block.startCycle + block.numCycles);
        const auto decoded = decodeBlock(b);
        words.assign(hi - lo, 0);
        for (u32 f = 0; f < traceSpec.numFields(); f++) {
            for (const SetInterval &iv : decoded->planes[f]) {
                const u64 a = std::max(
                    lo, block.startCycle + iv.start);
                const u64 z = std::min(
                    hi, block.startCycle + iv.start + iv.length);
                for (u64 c = a; c < z; c++)
                    words[c - lo] |= 1ull << f;
            }
        }
        for (u64 word : words)
            trace.append(word);
    }
    return trace;
}

u64
StoreReader::count(EventId event, u8 lane) const
{
    const int field = traceSpec.indexOf(event, lane);
    if (field < 0)
        return 0;
    u64 total = 0;
    // Damaged blocks carry zeroed footers, so salvage aggregates
    // naturally count only recovered cycles.
    for (const BlockMeta &block : blocks)
        total += block.fields[static_cast<u32>(field)].popcount;
    return total;
}

u64
StoreReader::countAllLanes(EventId event) const
{
    u64 total = 0;
    for (u32 f = 0; f < traceSpec.numFields(); f++) {
        if (traceSpec.fields[f].event != event)
            continue;
        for (const BlockMeta &block : blocks)
            total += block.fields[f].popcount;
    }
    return total;
}

u64
StoreReader::countInWindow(EventId event, u64 begin, u64 end) const
{
    end = std::min(end, totalCycles);
    if (begin >= end)
        return 0;
    requireIntact(begin, end, "StoreReader::countInWindow");
    std::vector<u32> fields;
    for (u32 f = 0; f < traceSpec.numFields(); f++) {
        if (traceSpec.fields[f].event == event)
            fields.push_back(f);
    }
    if (fields.empty())
        return 0;

    u64 total = 0;
    for (u32 b = blockOf(begin); b <= blockOf(end - 1); b++) {
        const BlockMeta &block = blocks[b];
        const u64 block_end = block.startCycle + block.numCycles;
        const u64 lo = std::max(begin, block.startCycle);
        const u64 hi = std::min(end, block_end);
        const bool covered =
            lo == block.startCycle && hi == block_end;
        // Fully covered blocks are served from footer popcounts;
        // boundary blocks whose fields are all-zero or saturated
        // short-circuit too. Only the rest decode.
        bool decode = false;
        for (u32 f : fields) {
            const FieldMeta &fm = block.fields[f];
            if (covered || fm.popcount == 0) {
                total += covered ? fm.popcount : 0;
            } else if (fm.popcount == block.numCycles) {
                total += hi - lo;
            } else {
                decode = true;
            }
        }
        if (decode) {
            const auto decoded = decodeBlock(b);
            for (u32 f : fields) {
                const FieldMeta &fm = block.fields[f];
                if (fm.popcount == 0 ||
                    fm.popcount == block.numCycles)
                    continue;
                total += countPlaneInRange(
                    decoded->planes[f],
                    static_cast<u32>(lo - block.startCycle),
                    static_cast<u32>(hi - block.startCycle));
            }
        }
    }
    return total;
}

TmaResult
StoreReader::windowTma(u64 begin, u64 end, u32 core_width) const
{
    TmaParams params;
    params.coreWidth = core_width;
    return windowTma(begin, end, params);
}

TmaResult
StoreReader::windowTma(u64 begin, u64 end,
                       const TmaParams &params) const
{
    end = clampTraceWindow(totalCycles, begin, end,
                           "StoreReader::windowTma");
    requireIntact(begin, end, "StoreReader::windowTma");

    TmaCounters counters;
    counters.cycles = end - begin;
    auto count_in = [&](EventId event) {
        return countInWindow(event, begin, end);
    };
    counters.retiredUops = count_in(EventId::UopsRetired) +
                           count_in(EventId::InstRetired);
    counters.issuedUops = count_in(EventId::UopsIssued) +
                          count_in(EventId::InstIssued);
    counters.fetchBubbles = count_in(EventId::FetchBubbles);
    counters.recovering = count_in(EventId::Recovering);
    counters.branchMispredicts = count_in(EventId::BranchMispredict);
    counters.machineClears = count_in(EventId::Flush);
    counters.fencesRetired = count_in(EventId::FenceRetired);
    counters.icacheBlocked = count_in(EventId::ICacheBlocked);
    counters.dcacheBlocked = count_in(EventId::DCacheBlocked);

    return computeTma(counters, params);
}

std::vector<SignalRun>
StoreReader::runsOfAny(EventId event) const
{
    std::vector<SignalRun> runs;
    std::vector<u32> fields;
    for (u32 f = 0; f < traceSpec.numFields(); f++) {
        if (traceSpec.fields[f].event == event)
            fields.push_back(f);
    }
    if (fields.empty())
        return runs;

    bool in_run = false;
    u64 run_start = 0, run_end = 0;
    auto feed = [&](u64 a, u64 b) {
        if (in_run && a == run_end) {
            run_end = b;
            return;
        }
        if (in_run)
            runs.push_back(SignalRun{run_start, run_end - run_start});
        run_start = a;
        run_end = b;
        in_run = true;
    };

    for (u32 b = 0; b < blocks.size(); b++) {
        const BlockMeta &block = blocks[b];
        if (block.damaged)
            continue; // salvage: damaged span reads as a gap
        u64 pop_sum = 0;
        bool saturated = false;
        for (u32 f : fields) {
            pop_sum += block.fields[f].popcount;
            saturated |=
                block.fields[f].popcount == block.numCycles;
        }
        if (pop_sum == 0)
            continue; // all-zero block: extends the gap, no decode
        if (saturated) {
            // Some lane is high every cycle: the whole block is one
            // run of the OR, no decode needed.
            feed(block.startCycle,
                 block.startCycle + block.numCycles);
            continue;
        }
        // Union the per-lane set intervals of this block.
        const auto decoded = decodeBlock(b);
        std::vector<std::pair<u64, u64>> spans;
        for (u32 f : fields) {
            for (const SetInterval &iv : decoded->planes[f])
                spans.emplace_back(
                    block.startCycle + iv.start,
                    block.startCycle + iv.start + iv.length);
        }
        for (const auto &[a, z] : mergeIntervals(std::move(spans)))
            feed(a, z);
    }
    if (in_run)
        runs.push_back(SignalRun{run_start, run_end - run_start});
    return runs;
}

RecoveryCdf
StoreReader::recoveryCdf() const
{
    RecoveryCdf cdf;
    for (const SignalRun &run : runsOfAny(EventId::Recovering))
        cdf.lengths.push_back(run.length);
    std::sort(cdf.lengths.begin(), cdf.lengths.end());
    return cdf;
}

OverlapBound
StoreReader::overlapUpperBound(u32 core_width, u32 pad) const
{
    OverlapBound result;
    const u64 cycles = totalCycles;
    result.cycles = cycles;
    if (cycles == 0)
        return result;

    const std::vector<SignalRun> refills =
        runsOfAny(EventId::ICacheBlocked);
    const std::vector<SignalRun> recoveries =
        runsOfAny(EventId::Recovering);

    auto padded = [&](const std::vector<SignalRun> &signal_runs) {
        std::vector<std::pair<u64, u64>> spans;
        spans.reserve(signal_runs.size());
        for (const SignalRun &run : signal_runs) {
            const u64 a = run.start > pad ? run.start - pad : 0;
            const u64 z =
                std::min(cycles, run.start + run.length + pad);
            spans.emplace_back(a, z);
        }
        return mergeIntervals(std::move(spans));
    };

    // Overlap windows are where a padded refill window and a padded
    // recovery window coincide — interval intersection instead of
    // the analyzer's per-cycle flag arrays.
    const std::vector<std::pair<u64, u64>> overlap =
        intersectIntervals(padded(refills), padded(recoveries));

    u64 overlap_slots = 0;
    for (const auto &[a, z] : overlap)
        overlap_slots += countInWindow(EventId::FetchBubbles, a, z);
    const u64 bubble_slots = countAllLanes(EventId::FetchBubbles);
    u64 recovering_cycles = 0;
    for (const SignalRun &run : recoveries)
        recovering_cycles += run.length;

    const double total_slots =
        static_cast<double>(cycles) * core_width;
    result.overlapSlots = overlap_slots;
    result.overlapFraction =
        static_cast<double>(overlap_slots) / total_slots;
    result.frontendFraction =
        static_cast<double>(bubble_slots) / total_slots;
    result.badSpecFraction =
        static_cast<double>(recovering_cycles) * core_width /
        total_slots;
    if (result.frontendFraction > 0) {
        result.frontendPerturbation =
            result.overlapFraction / result.frontendFraction;
    }
    if (result.badSpecFraction > 0) {
        result.badSpecPerturbation =
            result.overlapFraction / result.badSpecFraction;
    }
    return result;
}

void
StoreReader::verify() const
{
    LockGuard lock(ioMutex);
    std::vector<unsigned char> raw;
    for (u32 b = 0; b < blocks.size(); b++) {
        const BlockMeta &block = blocks[b];
        if (block.damaged)
            storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                       filePath, ": block ", b, " CRC mismatch");
        const u64 record_bytes =
            block.payloadEnd +
            blockFooterBytes(traceSpec.numFields()) - block.offset;
        raw.resize(record_bytes);
        if (!readExact(in, block.offset, raw.data(), record_bytes))
            storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                       filePath, ": truncated block ", b);
        u32 stored_crc;
        std::memcpy(&stored_crc, raw.data() + record_bytes - 4, 4);
        if (crc32(raw.data(), record_bytes - 4) != stored_crc)
            storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                       filePath, ": block ", b, " CRC mismatch");
    }
    if (!damageInfo.clean())
        storeFatal(StoreErrorKind::Block, "corrupt trace store ",
                   filePath, ": salvaged container is incomplete (",
                   damageInfo.damaged.size(), " damaged blocks, ",
                   damageInfo.trailingBytes, " trailing bytes)");
}

u64
StoreReader::writeRepaired(const std::string &path) const
{
    StoreWriter writer(traceSpec, path, cyclesPerBlock);
    for (u32 b = 0; b < blocks.size(); b++) {
        const BlockMeta &block = blocks[b];
        if (block.damaged)
            continue;
        const Trace window = readWindow(
            block.startCycle, block.startCycle + block.numCycles);
        for (u64 word : window.raw())
            writer.append(word);
    }
    writer.finish();
    return writer.cyclesWritten();
}

void
StoreReader::forEachCycleWord(
    u64 begin, u64 end,
    const std::function<void(u64, u64)> &fn) const
{
    end = std::min(end, totalCycles);
    if (begin >= end)
        return;
    for (u32 b = blockOf(begin); b <= blockOf(end - 1); b++) {
        const BlockMeta &block = blocks[b];
        const u64 lo = std::max(begin, block.startCycle);
        const u64 hi =
            std::min(end, block.startCycle + block.numCycles);
        const Trace window = readWindow(lo, hi);
        const std::vector<u64> &words = window.raw();
        for (u64 c = 0; c < words.size(); c++)
            fn(lo + c, words[c]);
    }
}

// ------------------------------------------- Trace <-> store bridging

void
Trace::toStore(const std::string &path, u32 block_cycles) const
{
    StoreWriter writer(traceSpec, path,
                       block_cycles ? block_cycles
                                    : kStoreDefaultBlockCycles);
    for (u64 word : records)
        writer.append(word);
    writer.finish();
}

Trace
Trace::fromStore(const std::string &path)
{
    return StoreReader(path).readAll();
}

u64
streamTraceToStore(Core &core, const TraceSpec &spec, u64 max_cycles,
                   const std::string &path, u32 block_cycles)
{
    StoreWriter writer(spec, path, block_cycles);
    return streamTraceRun(core, spec, max_cycles, writer);
}

} // namespace icicle
