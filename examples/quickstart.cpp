/**
 * @file
 * Quickstart: build a tiny program with the ProgramBuilder DSL, run
 * it on both cores, and print the Top-Down breakdown.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/session.hh"
#include "isa/builder.hh"
#include "perf/tma_tool.hh"

using namespace icicle;
using namespace icicle::reg;

int
main()
{
    // 1. Write a baremetal program: sum an array with an
    //    unpredictable branch thrown in.
    ProgramBuilder b("quickstart");
    Label data = b.newLabel();
    {
        std::vector<u64> values(4096);
        Rng rng(7);
        for (u64 &v : values)
            v = rng.below(100);
        data = b.dwords(values);
    }
    Label loop = b.newLabel(), skip = b.newLabel();
    b.la(s0, data);
    b.li(s1, 4096 * 8); // bytes
    b.li(t0, 0);        // offset
    b.li(a0, 0);        // sum
    b.bind(loop);
    b.add(t1, s0, t0);
    b.ld(t2, t1, 0);
    b.li(t3, 50);
    b.blt(t2, t3, skip); // data-dependent: ~50/50
    b.add(a0, a0, t2);
    b.bind(skip);
    b.addi(t0, t0, 8);
    b.blt(t0, s1, loop);
    b.halt();
    const Program program = b.build();

    // 2. Run it on Rocket (in-order) through the perf harness: the
    //    counters are programmed over the CSR interface exactly as
    //    the real Icicle software stack does.
    {
        auto core = makeRocket(RocketConfig{}, program);
        const TmaRun run = runTmaAnalysis(*core, TmaSource::InBand);
        std::printf("%s\n",
                    tmaToolReport(run, "quickstart on Rocket").c_str());
    }

    // 3. Same workload on a 3-wide out-of-order BOOM.
    {
        auto core = makeBoom(BoomConfig::large(), program);
        const TmaRun run = runTmaAnalysis(*core, TmaSource::InBand);
        std::printf("%s\n",
                    tmaToolReport(run, "quickstart on LargeBoomV3")
                        .c_str());
    }

    std::printf("The branch at `blt t2, t3` is data-dependent: both "
                "cores show Bad Speculation.\nDrop it (or make the "
                "data sorted) and watch the category vanish.\n");
    return 0;
}
