/**
 * @file
 * Assemble a RISC-V .s file and characterize it: the end-to-end
 * "bring your own kernel" workflow.
 *
 *   $ ./assemble_and_run program.s [rocket|small|...|giga]
 *   $ ./assemble_and_run --demo
 *
 * The demo assembles a built-in kernel whose inner loop alternates
 * between a predictable and an unpredictable branch, then prints the
 * TMA breakdown on both cores.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/session.hh"
#include "isa/assembler.hh"
#include "perf/tma_tool.hh"

using namespace icicle;

namespace
{

const char *kDemo = R"(
    # Demo kernel: xorshift-driven branch plus a strided load stream.
    .data
buf:    .space 65536
    .text
        la   s0, buf
        li   s1, 20000       # iterations
        li   s2, 0x5eed1
        li   s3, 0           # cursor
        li   s4, 0           # sum
loop:
        slli t0, s2, 13      # xorshift
        xor  s2, s2, t0
        srli t0, s2, 7
        xor  s2, s2, t0
        andi t0, s2, 1
        beqz t0, skip        # unpredictable
        addi s4, s4, 1
skip:
        add  t1, s0, s3
        ld   t2, 0(t1)
        add  s4, s4, t2
        addi s3, s3, 64
        andi s3, s3, 2047    # wrap inside 2 KiB (L1-resident)
        addi s1, s1, -1
        bnez s1, loop
        li   a0, 0
        ecall
)";

int
runOn(const Program &program, const char *target)
{
    if (std::strcmp(target, "rocket") == 0) {
        auto core = makeRocket(RocketConfig{}, program);
        const TmaRun run = runTmaAnalysis(*core, TmaSource::InBand);
        std::printf("%s\n", tmaToolReport(run, "Rocket").c_str());
        return core->executor().exitCode() == 0 ? 0 : 1;
    }
    BoomConfig cfg = BoomConfig::large();
    for (const BoomConfig &candidate : BoomConfig::allSizes()) {
        std::string lowered = candidate.name;
        for (char &c : lowered)
            c = static_cast<char>(tolower(c));
        if (lowered.find(target) != std::string::npos)
            cfg = candidate;
    }
    auto core = makeBoom(cfg, program);
    const TmaRun run = runTmaAnalysis(*core, TmaSource::InBand);
    std::printf("%s\n", tmaToolReport(run, cfg.name).c_str());
    return core->executor().exitCode() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "--demo") != 0) {
            std::ifstream in(argv[1]);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", argv[1]);
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            const Program program = assemble(text.str(), argv[1]);
            return runOn(program, argc > 2 ? argv[2] : "large");
        }

        std::printf("(no .s file given: running the built-in demo)\n\n");
        const Program program = assemble(kDemo, "demo");
        int rc = runOn(program, "rocket");
        rc |= runOn(program, "large");
        std::printf("Try editing the kernel: make the beqz pattern "
                    "predictable and Bad Speculation\nvanishes; bump "
                    "the andi wrap mask to 65535 and Mem Bound "
                    "appears.\n");
        return rc;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
