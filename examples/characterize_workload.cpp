/**
 * @file
 * The tma_tool experience: characterize any registered workload on
 * any core configuration, with first- and second-level TMA.
 *
 *   $ ./characterize_workload                 # list workloads
 *   $ ./characterize_workload qsort           # run on default cores
 *   $ ./characterize_workload 505.mcf_r mega  # pick a BOOM size
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "core/session.hh"
#include "perf/tma_tool.hh"
#include "workloads/workloads.hh"

using namespace icicle;

namespace
{

BoomConfig
configByName(const char *name)
{
    for (const BoomConfig &cfg : BoomConfig::allSizes()) {
        std::string lowered = cfg.name; // e.g. "MegaBoomV3"
        for (char &c : lowered)
            c = static_cast<char>(tolower(c));
        if (lowered.find(name) != std::string::npos)
            return cfg;
    }
    fatal("unknown BOOM size: ", name,
          " (try small/medium/large/mega/giga)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: %s <workload> [small|medium|large|mega|"
                    "giga|rocket]\n\nregistered workloads:\n",
                    argv[0]);
        for (const WorkloadInfo &info : allWorkloads())
            std::printf("  %-18s (%-9s) %s\n", info.name.c_str(),
                        info.suite.c_str(), info.description.c_str());
        return 0;
    }

    try {
        const Program program = buildWorkload(argv[1]);
        std::printf("workload: %s (%llu static instructions, "
                    "%llu B data)\n\n",
                    argv[1],
                    static_cast<unsigned long long>(program.numInsts()),
                    static_cast<unsigned long long>(
                        program.data.size()));

        const bool rocket_only =
            argc > 2 && std::strcmp(argv[2], "rocket") == 0;
        if (rocket_only || argc <= 2) {
            auto core = makeRocket(RocketConfig{}, program);
            const TmaRun run =
                runTmaAnalysis(*core, TmaSource::InBand);
            std::printf("%s\n",
                        tmaToolReport(run, "Rocket").c_str());
            if (rocket_only)
                return 0;
        }

        const BoomConfig cfg =
            argc > 2 ? configByName(argv[2]) : BoomConfig::large();
        auto core = makeBoom(cfg, program);
        const TmaRun run = runTmaAnalysis(*core, TmaSource::InBand);
        std::printf("%s\n", tmaToolReport(run, cfg.name).c_str());

        // Show the raw counters behind the breakdown, the way the
        // paper's tma_tool does.
        const TmaCounters &c = run.counters;
        std::printf("raw counters: cycles=%llu issued=%llu "
                    "retired=%llu bubbles=%llu recovering=%llu "
                    "br-miss=%llu d$blk=%llu\n",
                    static_cast<unsigned long long>(c.cycles),
                    static_cast<unsigned long long>(c.issuedUops),
                    static_cast<unsigned long long>(c.retiredUops),
                    static_cast<unsigned long long>(c.fetchBubbles),
                    static_cast<unsigned long long>(c.recovering),
                    static_cast<unsigned long long>(
                        c.branchMispredicts),
                    static_cast<unsigned long long>(c.dcacheBlocked));
    } catch (const FatalError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
