/**
 * @file
 * Counter-architecture design-space explorer: for a chosen BOOM size,
 * compare Scalar / AddWires / DistributedCounters on counting
 * accuracy, hardware-counter budget, and physical cost, using
 * activity factors measured from a real workload run — the workflow a
 * PMU designer follows with Icicle's out-of-band tools.
 *
 *   $ ./counter_explorer [small|medium|large|mega|giga] [workload]
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "perf/harness.hh"
#include "vlsi/vlsi.hh"
#include "workloads/workloads.hh"

using namespace icicle;

int
main(int argc, char **argv)
{
    const char *size = argc > 1 ? argv[1] : "large";
    const char *workload = argc > 2 ? argv[2] : "coremark";

    try {
        BoomConfig cfg = BoomConfig::large();
        for (const BoomConfig &candidate : BoomConfig::allSizes()) {
            std::string lowered = candidate.name;
            for (char &c : lowered)
                c = static_cast<char>(tolower(c));
            if (lowered.find(size) != std::string::npos)
                cfg = candidate;
        }
        std::printf("configuration: %s (W_C=%u, W_I=%u)\n"
                    "workload:      %s\n\n",
                    cfg.name.c_str(), cfg.coreWidth,
                    cfg.totalIssueWidth(), workload);

        ActivityFactors activity;
        std::printf("%-13s %9s %16s %16s %8s\n", "architecture",
                    "counters", "bubbles(sw)", "bubbles(exact)",
                    "match?");
        for (CounterArch arch :
             {CounterArch::Scalar, CounterArch::AddWires,
              CounterArch::Distributed}) {
            BoomConfig run_cfg = cfg;
            run_cfg.counterArch = arch;
            BoomCore core(run_cfg, buildWorkload(workload));
            PerfHarness harness(core);
            harness.addTmaEvents();
            harness.run(50'000'000);
            if (arch == CounterArch::Scalar)
                activity = measureActivity(core);
            const u64 counted = harness.value(EventId::FetchBubbles);
            const u64 exact = core.total(EventId::FetchBubbles);
            std::printf("%-13s %9u %16llu %16llu %8s\n",
                        counterArchName(arch), harness.countersUsed(),
                        static_cast<unsigned long long>(counted),
                        static_cast<unsigned long long>(exact),
                        counted == exact ? "yes" : "no");
        }
        std::printf("\n");

        std::printf("physical cost under measured activity:\n");
        for (CounterArch arch :
             {CounterArch::Scalar, CounterArch::AddWires,
              CounterArch::Distributed}) {
            const VlsiReport report =
                evaluateVlsi(cfg, arch, activity);
            std::printf("  %s\n", formatVlsiRow(report).c_str());
        }
        std::printf("\nTrade-off summary: Scalar burns counters, "
                    "AddWires burns combinational depth,\n"
                    "DistributedCounters burns a bounded undercount "
                    "(recoverable in software).\n");
    } catch (const FatalError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
