/**
 * @file
 * Trace-based (temporal) TMA: record a per-cycle microarchitectural
 * event trace, write it to disk, read it back, and analyze it — the
 * out-of-band path of Fig. 4 (TraceRV extension + trace analyzer).
 *
 *   $ ./temporal_tma [workload] [trace-file]
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/session.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

using namespace icicle;

int
main(int argc, char **argv)
{
    const char *workload = argc > 1 ? argv[1] : "mergesort";
    const char *path = argc > 2 ? argv[2] : "/tmp/icicle_example.trace";

    try {
        BoomCore core(BoomConfig::large(), buildWorkload(workload));

        // Choose the signals to stream (the TraceBundle); record one
        // bit per signal per cycle while the core runs.
        const TraceSpec spec = TraceSpec::tmaBundle(core);
        std::printf("tracing %u signals on %s...\n", spec.numFields(),
                    workload);
        Trace trace = traceRun(core, spec, 10'000'000);
        std::printf("captured %llu cycles\n",
                    static_cast<unsigned long long>(trace.numCycles()));

        // Round-trip through the binary format (the DMA-driver data).
        writeTrace(trace, path);
        Trace loaded = readTrace(path);
        std::printf("trace file: %s (%llu cycles loaded back)\n\n",
                    path,
                    static_cast<unsigned long long>(
                        loaded.numCycles()));

        TraceAnalyzer analyzer(loaded);

        // Temporal TMA over execution phases: quarters of the run.
        const u64 quarter = loaded.numCycles() / 4;
        for (int q = 0; q < 4; q++) {
            const TmaResult window = analyzer.windowTma(
                q * quarter, (q + 1) * quarter, core.coreWidth());
            std::printf("phase %d: %s\n", q,
                        formatTmaLine(window).c_str());
        }

        // Recovery-sequence CDF (Fig. 8b).
        const RecoveryCdf cdf = analyzer.recoveryCdf();
        std::printf("\nrecovery sequences: %llu  mode=%llu  p99=%llu "
                    " max=%llu\n",
                    static_cast<unsigned long long>(cdf.sequences()),
                    static_cast<unsigned long long>(cdf.mode()),
                    static_cast<unsigned long long>(
                        cdf.percentile(0.99)),
                    static_cast<unsigned long long>(cdf.max()));

        // Class-overlap upper bound (Table VI).
        const OverlapBound bound =
            analyzer.overlapUpperBound(core.coreWidth(), 50);
        std::printf("overlap upper bound: %.4f%% of slots "
                    "(frontend perturbation +-%.2f%% relative)\n",
                    bound.overlapFraction * 100,
                    bound.frontendPerturbation * 100);

        // A little window plot around the first recovery.
        const auto runs = analyzer.runsOf(EventId::Recovering);
        if (!runs.empty()) {
            const u64 at =
                runs[0].start > 8 ? runs[0].start - 8 : 0;
            std::printf("\nfirst recovery window:\n%s",
                        analyzer.plot(at, at + 60).c_str());
        }
    } catch (const FatalError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
