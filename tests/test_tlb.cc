/**
 * @file
 * TLB extension tests (the paper's §IV-A future work): translation
 * levels, LRU behaviour, event plumbing through both cores, and the
 * disabled-by-default guarantee.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "isa/builder.hh"
#include "mem/tlb.hh"
#include "rocket/rocket.hh"

namespace icicle
{
namespace
{

using namespace reg;

TlbConfig
enabledTlb()
{
    TlbConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb(4, 4096);
    EXPECT_FALSE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10FFF)); // same page
    EXPECT_FALSE(tlb.access(0x11000)); // next page
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2, 4096);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000);  // refresh
    tlb.access(0x3000);  // evicts 0x2000
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, HierarchyLatencies)
{
    TlbHierarchy tlbs(enabledTlb());
    const TlbResult cold = tlbs.data(0x400000);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_FALSE(cold.l2Hit);
    EXPECT_EQ(cold.latency, enabledTlb().l2HitLatency +
                                enabledTlb().walkLatency);
    const TlbResult warm = tlbs.data(0x400000);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.latency, 0u);
}

TEST(Tlb, L2CatchesL1Evictions)
{
    TlbConfig cfg = enabledTlb();
    cfg.l1Entries = 2;
    TlbHierarchy tlbs(cfg);
    tlbs.data(0x100000);
    tlbs.data(0x200000);
    tlbs.data(0x300000); // evicts 0x100000 from L1
    const TlbResult result = tlbs.data(0x100000);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.latency, cfg.l2HitLatency);
}

TEST(Tlb, DisabledIsFree)
{
    TlbHierarchy tlbs(TlbConfig{});
    const TlbResult result = tlbs.fetch(0x123456);
    EXPECT_TRUE(result.l1Hit);
    EXPECT_EQ(result.latency, 0u);
}

namespace
{

/** Strided loads across `pages` distinct pages, `rounds` times. */
Program
pageWalker(u32 pages, u32 rounds)
{
    ProgramBuilder b("pagewalk");
    Label buf = b.space(static_cast<u64>(pages) * 4096);
    b.la(s0, buf);
    b.li(s1, rounds);
    Label outer = b.newLabel(), inner = b.newLabel();
    b.bind(outer);
    b.mv(t0, s0);
    b.li(t1, pages);
    b.bind(inner);
    b.ld(t2, t0, 0);
    b.li(t3, 4096);
    b.add(t0, t0, t3);
    b.addi(t1, t1, -1);
    b.bnez(t1, inner);
    b.addi(s1, s1, -1);
    b.bnez(s1, outer);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

} // namespace

TEST(Tlb, RocketRaisesDtlbMissEvents)
{
    RocketConfig cfg;
    cfg.mem.tlb.enabled = true;
    cfg.mem.tlb.l1Entries = 16;
    // 64 pages: thrashes a 16-entry DTLB but fits the 512-entry L2.
    RocketCore core(cfg, pageWalker(64, 10));
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.total(EventId::DTlbMiss), 500u);
    EXPECT_GT(core.total(EventId::L2TlbMiss), 50u);
    EXPECT_GT(core.total(EventId::ITlbMiss), 0u);
}

TEST(Tlb, BoomRaisesDtlbMissEvents)
{
    BoomConfig cfg = BoomConfig::large();
    cfg.mem.tlb.enabled = true;
    cfg.mem.tlb.l1Entries = 16;
    BoomCore core(cfg, pageWalker(64, 10));
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.total(EventId::DTlbMiss), 500u);
}

TEST(Tlb, TlbPressureCostsCycles)
{
    RocketConfig off;
    RocketConfig on;
    on.mem.tlb.enabled = true;
    on.mem.tlb.l1Entries = 8;
    RocketCore off_core(off, pageWalker(64, 10));
    RocketCore on_core(on, pageWalker(64, 10));
    off_core.run(10'000'000);
    on_core.run(10'000'000);
    ASSERT_TRUE(off_core.done() && on_core.done());
    EXPECT_GT(on_core.cycle(), off_core.cycle());
    EXPECT_EQ(off_core.total(EventId::DTlbMiss), 0u);
}

TEST(Tlb, SmallFootprintBarelyMisses)
{
    RocketConfig cfg;
    cfg.mem.tlb.enabled = true;
    // 8 pages fit comfortably in a 32-entry DTLB.
    RocketCore core(cfg, pageWalker(8, 20));
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    // Only compulsory misses.
    EXPECT_LE(core.total(EventId::DTlbMiss), 8u + 2u);
}

} // namespace
} // namespace icicle
