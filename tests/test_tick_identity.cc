/**
 * @file
 * Byte-identity harness for the core tick paths (ISSUE 7 gate).
 *
 * The SoA/ring-buffer refactor of the Rocket and BOOM tick loops is
 * required to have *zero* behavioural drift: every guest-visible
 * counter, trace word, and TMA number must stay bit-identical to the
 * pre-refactor model. This suite pins that property with golden
 * hashes generated from the pre-refactor code (the same pattern the
 * icestore equivalence suite uses): 110 seeded synthetic workloads x
 * {Rocket, BOOM} x {Scalar, Distributed} counters, each run with a
 * TMA trace bundle attached and a representative set of programmed
 * HPM counters, folded into one CRC32 per (seed, config).
 *
 * The fold covers, in fixed order:
 *   - simulated cycle count and executor exit state,
 *   - host-side event totals for every EventId,
 *   - per-lane totals for every multi-source event,
 *   - raw CSR counter values AND corrected (residue-summed) values,
 *   - every packed trace word of the run,
 *   - the full TmaResult (bit-cast doubles).
 *
 * Regenerating goldens (only legitimate when the *model* changes, in
 * which case the diff must be explainable event by event):
 *
 *   ICICLE_TICK_IDENTITY_REGEN=/path/to/golden_tick_identity.inc \
 *     ./build/tests/test_tick_identity
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "common/crc32.hh"
#include "common/random.hh"
#include "core/session.hh"
#include "rocket/rocket.hh"
#include "trace/trace.hh"
#include "workloads/generator.hh"

namespace
{

using namespace icicle;

#include "golden_tick_identity.inc"

constexpr u64 kNumSeeds = 110;
constexpr u64 kRocketCycles = 40'000;
constexpr u64 kBoomCycles = 25'000;

/** Mix a seed into a diverse synthetic workload. */
SyntheticSpec
specForSeed(u64 seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xc2b2ae3d27d4eb4full);
    SyntheticSpec spec;
    spec.seed = seed + 1;
    spec.iterations = 400 + rng.below(400);
    spec.ilpChains = 1 + static_cast<u32>(rng.below(6));
    spec.chainDepth = 1 + static_cast<u32>(rng.below(4));
    spec.muls = static_cast<u32>(rng.below(3));
    spec.divs = static_cast<u32>(rng.below(2));
    spec.loads = static_cast<u32>(rng.below(5));
    spec.dataKiB = 4ull << rng.below(6); // 4 KiB .. 128 KiB
    spec.unpredictableBranches = static_cast<u32>(rng.below(3));
    spec.predictableBranches = static_cast<u32>(rng.below(3));
    spec.codeBloatFuncs = static_cast<u32>(rng.below(4));
    return spec;
}

void
foldU64(Crc32 &crc, u64 value)
{
    unsigned char bytes[8];
    std::memcpy(bytes, &value, sizeof(bytes));
    crc.update(bytes, sizeof(bytes));
}

void
foldDouble(Crc32 &crc, double value)
{
    u64 bits;
    std::memcpy(&bits, &value, sizeof(bits));
    foldU64(crc, bits);
}

void
foldTma(Crc32 &crc, const TmaResult &tma)
{
    foldDouble(crc, tma.retiring);
    foldDouble(crc, tma.badSpeculation);
    foldDouble(crc, tma.frontend);
    foldDouble(crc, tma.backend);
    foldDouble(crc, tma.machineClears);
    foldDouble(crc, tma.branchMispredicts);
    foldDouble(crc, tma.resteers);
    foldDouble(crc, tma.recoveryBubbles);
    foldDouble(crc, tma.fetchLatency);
    foldDouble(crc, tma.pcResteer);
    foldDouble(crc, tma.coreBound);
    foldDouble(crc, tma.memBound);
    foldDouble(crc, tma.memBoundL2);
    foldDouble(crc, tma.memBoundDram);
    foldDouble(crc, tma.ipc);
    foldU64(crc, tma.totalSlots);
    foldU64(crc, tma.cycles);
}

/** Program a representative HPM set (plain, multi-event, per-lane). */
void
programCounters(Core &core)
{
    CsrFile &csrs = core.csrFile();
    if (core.kind() == CoreKind::Rocket) {
        csrs.program(0, {EventId::InstRetired});
        csrs.program(1, {EventId::InstIssued});
        csrs.program(2, {EventId::FetchBubbles});
        csrs.program(3, {EventId::BranchMispredict, EventId::Flush});
        csrs.program(4, {EventId::Recovering});
        csrs.program(5, {EventId::DCacheBlocked});
    } else {
        csrs.program(0, {EventId::InstRetired});
        csrs.program(1, {EventId::UopsIssued});
        csrs.program(2, {EventId::FetchBubbles});
        csrs.program(3, {EventId::BranchMispredict, EventId::Flush});
        csrs.program(4, {EventId::Recovering});
        // Lane-selected counter: decode lane 0 of the bubble signal.
        csrs.program(5, {EventId::FetchBubbles}, 1);
    }
    csrs.setInhibit(false);
}

u32
runAndHash(Core &core, u64 max_cycles)
{
    programCounters(core);
    const TraceSpec spec = TraceSpec::tmaBundle(core);
    const Trace trace = traceRun(core, spec, max_cycles);

    Crc32 crc;
    foldU64(crc, core.cycle());
    foldU64(crc, core.executor().halted() ? 1 : 0);
    foldU64(crc, core.executor().exitCode());
    for (u32 e = 0; e < kNumEvents; e++) {
        const EventId id = static_cast<EventId>(e);
        foldU64(crc, core.total(id));
        const u32 sources = core.bus().sourcesOf(id);
        if (sources > 1) {
            for (u32 lane = 0; lane < sources; lane++)
                foldU64(crc, core.laneTotal(id, lane));
        }
    }
    const CsrFile &csrs = core.csrs();
    foldU64(crc, csrs.cycles());
    foldU64(crc, csrs.instsRetired());
    for (u32 i = 0; i < 6; i++) {
        foldU64(crc, csrs.hpmValue(i));
        foldU64(crc, csrs.hpmCorrected(i));
    }
    for (u64 word : trace.raw())
        foldU64(crc, word);
    foldTma(crc, analyzeTma(core));
    return crc.value();
}

/** The four configurations, in golden-column order. */
u32
hashConfig(u64 seed, u32 config)
{
    const Program program = generateSynthetic(specForSeed(seed));
    switch (config) {
      case 0: {
        RocketConfig cfg;
        cfg.counterArch = CounterArch::Scalar;
        RocketCore core(cfg, program);
        return runAndHash(core, kRocketCycles);
      }
      case 1: {
        RocketConfig cfg;
        cfg.counterArch = CounterArch::Distributed;
        RocketCore core(cfg, program);
        return runAndHash(core, kRocketCycles);
      }
      case 2: {
        BoomConfig cfg = BoomConfig::medium();
        cfg.counterArch = CounterArch::Scalar;
        BoomCore core(cfg, program);
        return runAndHash(core, kBoomCycles);
      }
      default: {
        BoomConfig cfg = BoomConfig::medium();
        cfg.counterArch = CounterArch::Distributed;
        BoomCore core(cfg, program);
        return runAndHash(core, kBoomCycles);
      }
    }
}

const char *const kConfigNames[4] = {
    "rocket-scalar",
    "rocket-distributed",
    "boom-medium-scalar",
    "boom-medium-distributed",
};

/** Regen mode: rewrite the golden table instead of checking it. */
bool
maybeRegenerate()
{
    const char *path = std::getenv("ICICLE_TICK_IDENTITY_REGEN");
    if (!path)
        return false;
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        std::exit(1);
    }
    std::fprintf(out,
                 "// Golden tick-identity hashes. Generated by\n"
                 "// ICICLE_TICK_IDENTITY_REGEN (see "
                 "test_tick_identity.cc);\n"
                 "// columns: rocket-scalar, rocket-distributed,\n"
                 "// boom-medium-scalar, boom-medium-distributed.\n"
                 "static const u32 kGoldenTickHashes[110][4] = {\n");
    for (u64 seed = 0; seed < kNumSeeds; seed++) {
        std::fprintf(out, "    {0x%08" PRIx32 ", 0x%08" PRIx32
                          ", 0x%08" PRIx32 ", 0x%08" PRIx32 "},\n",
                     hashConfig(seed, 0), hashConfig(seed, 1),
                     hashConfig(seed, 2), hashConfig(seed, 3));
    }
    std::fprintf(out, "};\n");
    std::fclose(out);
    std::printf("regenerated goldens at %s\n", path);
    return true;
}

// Group seeds into 11 shards of 10 so ctest parallelizes the suite.
struct TickIdentityShard : ::testing::TestWithParam<u64>
{};

TEST_P(TickIdentityShard, MatchesPreRefactorGolden)
{
    static const bool regenerated = maybeRegenerate();
    if (regenerated)
        GTEST_SKIP() << "regen mode: goldens rewritten, not checked";
    const u64 shard = GetParam();
    for (u64 seed = shard * 10; seed < (shard + 1) * 10; seed++) {
        for (u32 config = 0; config < 4; config++) {
            EXPECT_EQ(hashConfig(seed, config),
                      kGoldenTickHashes[seed][config])
                << "seed " << seed << " config "
                << kConfigNames[config]
                << ": tick path drifted from the pre-refactor golden";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSeeds, TickIdentityShard,
                         ::testing::Range<u64>(0, 11));

} // namespace
