/**
 * @file
 * Regression tests for the reference-after-pop bug class audited in
 * the SoA ring-buffer refactor. Each test pins one audited site by
 * driving the exact interleaving that made the old deque-based code
 * read popped/erased storage:
 *
 *  1. BoomCore::flushFrom machine-clear rebuild — the replay queue is
 *     rebuilt from fetchBuffer + ROB while fetchBuffer is cleared in
 *     the same call; the old code could walk invalidated deque
 *     storage when wrong-path entries were being filtered.
 *  2. BoomCore stageCommit/stageComplete STQ maintenance — commits
 *     erase the STQ head while a same-window flush truncates the
 *     tail; stale iterators or references into the erased range were
 *     possible with deque::erase.
 *  3. RocketCore tickBackend — a reference to ibuf.front() held
 *     across popFront() and the FenceI ibuf.clear().
 *
 * The refactored UopRing makes the bug class structural: front() is
 * by-value and retFront()/flagsFront() references are documented as
 * invalid after any push/pop. These tests are the behavioral gate; in
 * the sanitize CI job they additionally run under ASan+UBSan, so a
 * reintroduced stale reference fails loudly rather than flakily.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"

namespace icicle
{
namespace
{

using namespace reg;

/**
 * Store-load violations with unpredictable branches in flight: every
 * machine clear fires while the fetch buffer holds a mix of correct-
 * and wrong-path uops, so the flushFrom rebuild must filter entries
 * out of the buffer it is about to clear.
 */
Program
violationStorm(u64 iterations)
{
    ProgramBuilder b("violation-storm");
    Label buf = b.dword(0);
    Label skip = b.newLabel(), loop = b.newLabel();
    b.la(s0, buf);
    b.li(s1, static_cast<i64>(iterations));
    b.li(s2, 7);
    b.bind(loop);
    b.div(t0, s1, s2);  // slow producer feeding the store
    b.sd(t0, s0, 0);    // store stalls on the divide
    b.ld(t1, s0, 0);    // load speculates ahead -> ordering clear
    b.add(t2, t2, t1);
    b.andi(t3, t1, 1);  // data-dependent branch: mispredicts keep
    b.beqz(t3, skip);   // wrong-path uops in the fetch buffer
    b.addi(t4, t4, 1);
    b.bind(skip);
    b.addi(s1, s1, -1);
    b.bnez(s1, loop);
    b.halt();
    return b.build();
}

/**
 * Dense store traffic punctuated by violations and fences: STQ heads
 * are erased at commit in the same windows where machine clears pop
 * the STQ tail, covering both removal paths against each other.
 */
Program
storeChurn(u64 iterations)
{
    ProgramBuilder b("store-churn");
    Label buf = b.space(64);
    Label loop = b.newLabel();
    b.la(s0, buf);
    b.li(s1, static_cast<i64>(iterations));
    b.li(s2, 9);
    b.bind(loop);
    b.sd(s1, s0, 0);
    b.sd(s1, s0, 8);
    b.sd(s1, s0, 16);
    b.div(t0, s1, s2);
    b.sd(t0, s0, 24);   // late store...
    b.ld(t1, s0, 24);   // ...raced by a speculating load
    b.fence();          // drains the STQ behind the clears
    b.addi(s1, s1, -1);
    b.bnez(s1, loop);
    b.halt();
    return b.build();
}

class BoomReplayAllSizes : public ::testing::TestWithParam<int>
{
  protected:
    BoomConfig config() const
    { return BoomConfig::allSizes()[GetParam()]; }
};

TEST_P(BoomReplayAllSizes, MachineClearRebuildIsSound)
{
    BoomCore core(config(), violationStorm(200));
    core.run(2'000'000);
    ASSERT_TRUE(core.done());
    // The pathology must actually fire or the site went untested.
    EXPECT_GE(core.machineClears(), 1u);
    // Zero behavioral drift: replayed execution retires exactly what
    // the functional executor ran.
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
}

TEST_P(BoomReplayAllSizes, StqCommitAndFlushInterleave)
{
    BoomCore core(config(), storeChurn(120));
    core.run(2'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
    // Every store either committed or was squashed; a desynced STQ
    // asserts inside stageCommit long before this check.
    EXPECT_GE(core.total(EventId::FenceRetired), 120u);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, BoomReplayAllSizes,
                         ::testing::Range(0, 5));

TEST(RocketReplay, FenceIClearsBufferedUopsSafely)
{
    // fence.i in a loop with instructions already decoded behind it:
    // the backend copies the head uop, pops it, then clears the whole
    // buffer — the old code's head reference would dangle here.
    ProgramBuilder b("fencei-loop");
    Label loop = b.newLabel();
    b.li(t0, 50);
    b.bind(loop);
    b.addi(t1, t1, 1);
    b.fenceI();
    b.addi(t2, t2, 2);  // buffered past the fence, must be refetched
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(1'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
}

} // namespace
} // namespace icicle
