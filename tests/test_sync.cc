/**
 * @file
 * Lock-discipline runtime tests (common/sync.hh + common/lockorder):
 * lock-class registration and dedup, per-thread held-lock stacks,
 * order-graph edges with first-witness stacks, rank-inversion
 * reporting with both witness stacks, multi-node cycle detection with
 * canonical (deterministic) rendering, the disarmed fast path, the
 * fork-safety check, and the JSON/LintReport renderings icicle-sync
 * serves. Under ICICLE_MUTANTS, the seeded rank-inversion mutant must
 * be caught with the exact two-class cycle (non-vacuity).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostics.hh"
#include "common/lockorder.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "fault/fault.hh"
#include "serve/chaos.hh"
#include "serve/client.hh"
#include "serve/server.hh"

#if defined(__SANITIZE_THREAD__)
#define ICICLE_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ICICLE_TSAN_BUILD 1
#endif
#endif

#ifdef ICICLE_TSAN_BUILD
// Several tests below construct genuinely inverted acquisition
// orders on purpose — that IS the behavior under test, taken
// single-threaded so nothing can actually deadlock. TSan's own
// lock-order detector (rightly) reports each one; our runtime must
// report them too, so TSan's detector is silenced for this binary
// only and the assertions on lockOrderReport() do the judging.
extern "C" const char *
__tsan_default_options()
{
    return "detect_deadlocks=0";
}
#endif

namespace icicle
{
namespace
{

using lockorder::LockEdge;
using lockorder::LockOrderReport;
using lockorder::LockViolation;

/** Arm the runtime and start from a clean slate, pass or fail. */
class SyncTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        lockorder::setLockOrderEnabled(true);
        lockorder::resetLockOrder();
    }

    void
    TearDown() override
    {
        lockorder::resetLockOrder();
        lockorder::setLockOrderEnabled(true);
    }
};

const LockEdge *
findEdge(const LockOrderReport &report, const std::string &from,
         const std::string &to)
{
    for (const LockEdge &edge : report.edges) {
        if (edge.from == from && edge.to == to)
            return &edge;
    }
    return nullptr;
}

const LockViolation *
findViolation(const LockOrderReport &report, const std::string &kind,
              const std::string &cls)
{
    for (const LockViolation &violation : report.violations) {
        if (violation.kind != kind)
            continue;
        if (std::find(violation.classes.begin(),
                      violation.classes.end(),
                      cls) != violation.classes.end())
            return &violation;
    }
    return nullptr;
}

bool
hasNode(const LockOrderReport &report, const std::string &name)
{
    for (const auto &node : report.nodes) {
        if (node.name == name)
            return true;
    }
    return false;
}

TEST_F(SyncTest, ClassesDedupeByNameAcrossInstances)
{
    Mutex first("test.sync.dedupe", 700);
    Mutex second("test.sync.dedupe", 700);
    EXPECT_EQ(first.lockClass(), second.lockClass());

    // Instances of one class are one graph node: nesting two
    // same-class instances records a self-edge, not two nodes.
    {
        LockGuard outer(first);
        LockGuard inner(second);
    }
    const LockOrderReport report = lockorder::lockOrderReport();
    const LockEdge *self =
        findEdge(report, "test.sync.dedupe", "test.sync.dedupe");
    ASSERT_NE(self, nullptr);
    EXPECT_EQ(self->count, 1u);
}

TEST_F(SyncTest, HeldStackTracksAcquisitionOrder)
{
    Mutex outer("test.sync.held.outer", 701);
    Mutex inner("test.sync.held.inner", 702);
    EXPECT_EQ(lockorder::heldLockCount(), 0u);
    {
        LockGuard a(outer);
        EXPECT_EQ(lockorder::heldLockCount(), 1u);
        {
            LockGuard b(inner);
            const std::vector<std::string> held =
                lockorder::heldLockNames();
            ASSERT_EQ(held.size(), 2u);
            // Outermost first.
            EXPECT_EQ(held[0], "test.sync.held.outer");
            EXPECT_EQ(held[1], "test.sync.held.inner");
        }
        EXPECT_EQ(lockorder::heldLockCount(), 1u);
    }
    EXPECT_EQ(lockorder::heldLockCount(), 0u);
}

TEST_F(SyncTest, HeldStackIsPerThread)
{
    Mutex mine("test.sync.perthread", 703);
    LockGuard lock(mine);
    u32 other_count = 99;
    std::thread peer(
        [&other_count] { other_count = lockorder::heldLockCount(); });
    peer.join();
    EXPECT_EQ(other_count, 0u);
    EXPECT_EQ(lockorder::heldLockCount(), 1u);
}

TEST_F(SyncTest, EdgesCarryCountsAndFirstWitness)
{
    Mutex outer("test.sync.edge.outer", 704);
    Mutex middle("test.sync.edge.middle", 705);
    Mutex inner("test.sync.edge.inner", 706);
    for (int i = 0; i < 3; i++) {
        LockGuard a(outer);
        LockGuard b(middle);
        LockGuard c(inner);
    }
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_TRUE(report.clean());

    const LockEdge *direct = findEdge(report, "test.sync.edge.outer",
                                      "test.sync.edge.middle");
    ASSERT_NE(direct, nullptr);
    EXPECT_EQ(direct->count, 3u);
    const std::vector<std::string> expect_direct = {
        "test.sync.edge.outer", "test.sync.edge.middle"};
    EXPECT_EQ(direct->witness, expect_direct);

    // Acquiring `inner` with two locks held records an edge from
    // EVERY held class, each with the full stack as witness.
    const LockEdge *skip = findEdge(report, "test.sync.edge.outer",
                                    "test.sync.edge.inner");
    ASSERT_NE(skip, nullptr);
    const std::vector<std::string> expect_skip = {
        "test.sync.edge.outer", "test.sync.edge.middle",
        "test.sync.edge.inner"};
    EXPECT_EQ(skip->witness, expect_skip);
}

TEST_F(SyncTest, RankInversionReportsBothWitnessStacks)
{
    Mutex low("test.sync.inv.low", 710);
    Mutex high("test.sync.inv.high", 711);
    {
        LockGuard a(low);
        LockGuard b(high); // legal: rank increases
    }
    {
        LockGuard b(high);
        LockGuard a(low); // inversion, and closes a 2-cycle
    }
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.cycleFree);

    const LockViolation *inversion =
        findViolation(report, "rank-inversion", "test.sync.inv.low");
    ASSERT_NE(inversion, nullptr);
    // Witness 1: the inverted acquisition; witness 2: the stack that
    // established the forward edge.
    ASSERT_EQ(inversion->witnesses.size(), 2u);
    const std::vector<std::string> inverted = {"test.sync.inv.high",
                                               "test.sync.inv.low"};
    const std::vector<std::string> forward = {"test.sync.inv.low",
                                              "test.sync.inv.high"};
    EXPECT_EQ(inversion->witnesses[0], inverted);
    EXPECT_EQ(inversion->witnesses[1], forward);

    const LockViolation *cycle =
        findViolation(report, "cycle", "test.sync.inv.low");
    ASSERT_NE(cycle, nullptr);
    EXPECT_EQ(cycle->witnesses.size(), cycle->classes.size());
}

TEST_F(SyncTest, ThreeNodeCycleDetectedWithoutPairwiseInversion)
{
    // Each pairwise order looks locally plausible; only the global
    // graph walk sees a -> b -> c -> a. (Taken sequentially on one
    // thread: the cycle lives in the order graph, nothing deadlocks.)
    Mutex a("test.sync.cycle.a", 720);
    Mutex b("test.sync.cycle.b", 721);
    Mutex c("test.sync.cycle.c", 722);
    {
        LockGuard first(a);
        LockGuard second(b);
    }
    {
        LockGuard first(b);
        LockGuard second(c);
    }
    {
        LockGuard first(c);
        LockGuard second(a);
    }
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_FALSE(report.cycleFree);
    const LockViolation *cycle =
        findViolation(report, "cycle", "test.sync.cycle.a");
    ASSERT_NE(cycle, nullptr);
    // Canonical rotation: lexicographically smallest class first.
    const std::vector<std::string> expected = {"test.sync.cycle.a",
                                              "test.sync.cycle.b",
                                              "test.sync.cycle.c"};
    EXPECT_EQ(cycle->classes, expected);
    EXPECT_EQ(cycle->witnesses.size(), 3u);
}

TEST_F(SyncTest, ReportIsDeterministic)
{
    Mutex a("test.sync.det.a", 730);
    Mutex b("test.sync.det.b", 731);
    {
        LockGuard first(a);
        LockGuard second(b);
    }
    {
        LockGuard second(b);
        LockGuard first(a); // inversion + cycle, for rendering
    }
    const std::string once = lockorder::lockOrderReport().toJson();
    const std::string again = lockorder::lockOrderReport().toJson();
    EXPECT_EQ(once, again);
    EXPECT_NE(once.find("\"cycle_free\":false"), std::string::npos);
}

TEST_F(SyncTest, DisarmedTracksHeldStackButRecordsNoEdges)
{
    lockorder::setLockOrderEnabled(false);
    EXPECT_FALSE(lockorder::lockOrderEnabled());
    Mutex outer("test.sync.off.outer", 740);
    Mutex inner("test.sync.off.inner", 741);
    {
        LockGuard a(outer);
        // The held stack stays truthful while disarmed (arming
        // mid-run and the fork check depend on it)...
        EXPECT_EQ(lockorder::heldLockCount(), 1u);
        LockGuard b(inner);
    }
    lockorder::setLockOrderEnabled(true);
    // ...but no observations were recorded.
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_EQ(findEdge(report, "test.sync.off.outer",
                       "test.sync.off.inner"),
              nullptr);
    EXPECT_TRUE(report.clean());
}

TEST_F(SyncTest, ResetClearsObservationsButKeepsClasses)
{
    Mutex outer("test.sync.reset.outer", 750);
    Mutex inner("test.sync.reset.inner", 751);
    {
        LockGuard a(outer);
        LockGuard b(inner);
    }
    ASSERT_NE(findEdge(lockorder::lockOrderReport(),
                       "test.sync.reset.outer",
                       "test.sync.reset.inner"),
              nullptr);
    lockorder::resetLockOrder();
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_EQ(findEdge(report, "test.sync.reset.outer",
                       "test.sync.reset.inner"),
              nullptr);
    // Classes are compiled-in facts, not observations.
    EXPECT_TRUE(hasNode(report, "test.sync.reset.outer"));
}

TEST_F(SyncTest, ForkSafetyFlagsDisallowedHeldLocks)
{
    Mutex held("test.sync.fork.held", 760);
    const u64 before = lockorder::forkViolations();

    // Nothing held: fork-safe.
    EXPECT_EQ(lockorder::checkForkSafety("test.site", {}), 0u);

    LockGuard lock(held);
    // Held but allowed: still fork-safe.
    EXPECT_EQ(lockorder::checkForkSafety("test.site",
                                         {"test.sync.fork.held"}),
              0u);
    EXPECT_EQ(lockorder::forkViolations(), before);

    // Held and not allowed: one SYNC-003 violation with the held
    // stack as witness.
    EXPECT_EQ(lockorder::checkForkSafety("test.site", {}), 1u);
    EXPECT_EQ(lockorder::forkViolations(), before + 1);
    const LockOrderReport report = lockorder::lockOrderReport();
    const LockViolation *violation = findViolation(
        report, "fork-held-lock", "test.sync.fork.held");
    ASSERT_NE(violation, nullptr);
    EXPECT_NE(violation->message.find("test.site"),
              std::string::npos);
    EXPECT_FALSE(report.clean());
}

TEST_F(SyncTest, CondVarWaitKeepsLockOnHeldStack)
{
    Mutex mutex("test.sync.cv", 770);
    CondVar cv;
    bool ready = false;
    std::thread waker([&] {
        LockGuard lock(mutex);
        ready = true;
        cv.notifyAll();
    });
    {
        UniqueLock lock(mutex);
        while (!ready)
            cv.wait(lock);
        // Reacquired after the wait: still (exactly once) on the
        // held stack.
        EXPECT_EQ(lockorder::heldLockCount(), 1u);
    }
    waker.join();
    EXPECT_EQ(lockorder::heldLockCount(), 0u);
}

TEST_F(SyncTest, LintReportAlwaysCarriesTheSummaryRule)
{
    const LintReport clean =
        lockorder::lockOrderReport().toLintReport();
    EXPECT_TRUE(clean.hasRule("SYNC-000"));
    EXPECT_EQ(clean.errorCount(), 0u);

    Mutex low("test.sync.lint.low", 780);
    Mutex high("test.sync.lint.high", 781);
    {
        LockGuard a(low);
        LockGuard b(high);
    }
    {
        LockGuard b(high);
        LockGuard a(low);
    }
    const LintReport dirty =
        lockorder::lockOrderReport().toLintReport();
    EXPECT_TRUE(dirty.hasRule("SYNC-001"));
    EXPECT_TRUE(dirty.hasRule("SYNC-002"));
    EXPECT_GT(dirty.errorCount(), 0u);
}

#ifdef ICICLE_MUTANTS
TEST_F(SyncTest, SeededRankInversionMutantIsCaughtExactly)
{
    lockorder::runRankInversionMutant();
    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_FALSE(report.clean());
    const LockViolation *cycle =
        findViolation(report, "cycle", lockorder::kMutantLockA);
    ASSERT_NE(cycle, nullptr);
    const std::vector<std::string> expected = {
        lockorder::kMutantLockA, lockorder::kMutantLockB};
    EXPECT_EQ(cycle->classes, expected);
    ASSERT_NE(findViolation(report, "rank-inversion",
                            lockorder::kMutantLockA),
              nullptr);
}
#else
TEST_F(SyncTest, MutantHookIsFatalWithoutTheMutantBuild)
{
    // The self-test must be impossible to "pass" silently on a build
    // that never seeded the bug.
    EXPECT_THROW(lockorder::runRankInversionMutant(), FatalError);
}
#endif

// ---- the serving path's lock graph ----------------------------------

/**
 * A miniature chaos drive (clean lane, admission gate armed) run
 * under this fixture's lock-order runtime: every lock nesting the
 * serving path exercises — conn bookkeeping, admission, shard,
 * worker, stats — lands in the graph, and the graph must come back
 * cycle-free with the admission class registered at its declared
 * place. This is the executable form of DESIGN.md's rank table for
 * the overload-protection locks.
 */
TEST_F(SyncTest, ChaosDriveKeepsTheServeLockGraphCycleFree)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "sync_chaos";
    std::filesystem::remove_all(dir);

    ChaosOptions opts;
    opts.dir = dir;
    opts.clean = true;
    opts.episodes = 1;
    opts.clients = 2;
    opts.requestsPerClient = 1;
    opts.maxCycles = 20'000;
    opts.shards = 1;
    opts.maxConns = 8;
    opts.maxQueue = 2;
    const ChaosVerdict verdict = runChaos(opts);
    EXPECT_TRUE(verdict.pass()) << verdict.format();

    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_TRUE(report.clean()) << report.format();
    EXPECT_TRUE(hasNode(report, "serve.admission"));

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

/**
 * Regression for the failure-path admission release: a failed job
 * under an armed miss queue must give back its queue slot AFTER the
 * shard mutex drops, never under it — serve.admission (rank 15) is
 * an outer lock relative to the shards (rank 20), so releasing
 * inside the shard scope is a rank inversion the runtime flags.
 */
TEST_F(SyncTest, FailedJobReleasesAdmissionSlotOutsideShardLock)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "sync_admission";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    ServerOptions options;
    options.socketPath = dir + "/icicled.sock";
    options.cacheDir = dir + "/cache";
    options.shards = 1;
    options.maxQueue = 1;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });
    // Both dispatch attempts of the first job SIGKILL their worker
    // (runJob retries once on a respawned worker): runJob fails, and
    // pointResult walks the error path while a queue slot is
    // reserved.
    setFaultSpec("kill@worker#0, kill@worker#1");

    ClientOptions copts;
    copts.maxRetries = 0;
    ServeClient client(options.socketPath, copts);
    SweepQuery query;
    query.cores = {"rocket"};
    query.workloads = {"vvadd"};
    query.archs = {CounterArch::AddWires};
    query.maxCycles = 20'000;
    query.format = "csv";
    // The daemon answers with a typed Error frame (not retriable).
    EXPECT_THROW(client.sweep(query), FatalError);
    setFaultSpec("");
    client.shutdown();
    daemon.join();

    const LockOrderReport report = lockorder::lockOrderReport();
    EXPECT_EQ(findViolation(report, "rank-inversion",
                            "serve.admission"),
              nullptr)
        << report.format();
    EXPECT_TRUE(report.clean()) << report.format();

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

} // namespace
} // namespace icicle
