/**
 * @file
 * Workload functional tests: every registered workload must run to
 * completion on the functional executor and self-verify (exit 0).
 * A few workloads additionally run on both timing models end to end.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "isa/executor.hh"
#include "rocket/rocket.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

class AllWorkloads : public ::testing::TestWithParam<int>
{
  protected:
    const WorkloadInfo &info() const
    { return allWorkloads()[GetParam()]; }
};

TEST_P(AllWorkloads, SelfVerifiesOnExecutor)
{
    Executor exec(info().build());
    exec.run(200'000'000);
    ASSERT_TRUE(exec.halted()) << info().name << " did not halt";
    EXPECT_EQ(exec.exitCode(), 0u)
        << info().name << " failed self-verification";
}

TEST_P(AllWorkloads, HasReasonableLength)
{
    Executor exec(info().build());
    exec.run(200'000'000);
    ASSERT_TRUE(exec.halted());
    // Every workload should be substantial but simulable.
    EXPECT_GT(exec.instsRetired(), 5000u) << info().name;
    EXPECT_LT(exec.instsRetired(), 20'000'000u) << info().name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllWorkloads,
    ::testing::Range(0, static_cast<int>(allWorkloads().size())),
    [](const auto &info) {
        std::string name = allWorkloads()[info.param].name;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Workloads, RegistryNamesUniqueAndSuitesValid)
{
    std::vector<std::string> seen;
    for (const WorkloadInfo &info : allWorkloads()) {
        for (const std::string &name : seen)
            EXPECT_NE(name, info.name);
        seen.push_back(info.name);
        EXPECT_TRUE(info.suite == "micro" || info.suite == "composite" ||
                    info.suite == "spec")
            << info.suite;
    }
    EXPECT_EQ(workloadNames("spec").size(), 10u);
}

TEST(Workloads, CoremarkVariantsSameInstructionCount)
{
    // The scheduling case study requires identical instruction counts.
    Executor plain(workloads::coremark(false));
    Executor sched(workloads::coremark(true));
    plain.run(100'000'000);
    sched.run(100'000'000);
    ASSERT_TRUE(plain.halted() && sched.halted());
    EXPECT_EQ(plain.exitCode(), 0u);
    EXPECT_EQ(sched.exitCode(), 0u);
    EXPECT_EQ(plain.instsRetired(), sched.instsRetired());
}

TEST(Workloads, BrmissVariantsVerify)
{
    Executor base(workloads::brmiss(false));
    Executor inv(workloads::brmiss(true));
    base.run(100'000'000);
    inv.run(100'000'000);
    ASSERT_TRUE(base.halted() && inv.halted());
    EXPECT_EQ(base.exitCode(), 0u);
    EXPECT_EQ(inv.exitCode(), 0u);
    // The inverted version executes the padding every iteration.
    EXPECT_GT(inv.instsRetired(), base.instsRetired());
}

TEST(Workloads, MergesortRunsOnBothCores)
{
    {
        RocketCore core(RocketConfig{}, workloads::mergesort());
        core.run(100'000'000);
        ASSERT_TRUE(core.done());
        EXPECT_EQ(core.executor().exitCode(), 0u);
    }
    {
        BoomCore core(BoomConfig::large(), workloads::mergesort());
        core.run(100'000'000);
        ASSERT_TRUE(core.done());
        EXPECT_EQ(core.executor().exitCode(), 0u);
    }
}

TEST(Workloads, QsortRunsOnBothCores)
{
    {
        RocketCore core(RocketConfig{}, workloads::qsortKernel());
        core.run(100'000'000);
        ASSERT_TRUE(core.done());
        EXPECT_EQ(core.executor().exitCode(), 0u);
    }
    {
        BoomCore core(BoomConfig::large(), workloads::qsortKernel());
        core.run(100'000'000);
        ASSERT_TRUE(core.done());
        EXPECT_EQ(core.executor().exitCode(), 0u);
    }
}

TEST(Workloads, DeepsjengWorkingSetParameter)
{
    Executor small(workloads::spec531DeepsjengR(16));
    Executor large(workloads::spec531DeepsjengR(24));
    small.run(100'000'000);
    large.run(100'000'000);
    ASSERT_TRUE(small.halted() && large.halted());
    EXPECT_EQ(small.exitCode(), 0u);
    EXPECT_EQ(large.exitCode(), 0u);
}

} // namespace
} // namespace icicle
