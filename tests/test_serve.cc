/**
 * @file
 * icicled serve subsystem tests: wire-protocol round trips and
 * corruption rejection, cache key identity, crash-safe cache
 * publish/lookup, and an in-process daemon end-to-end drill pinning
 * the headline guarantee — a cached reply is byte-identical to the
 * first (simulated) reply.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/lockorder.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "fault/fault.hh"
#include "serve/cache.hh"
#include "serve/chaos.hh"
#include "serve/client.hh"
#include "serve/pool.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sweep/journal.hh"
#include "sweep/sweep.hh"

namespace icicle
{
namespace
{

class TempDir
{
  public:
    explicit TempDir(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    const std::string path;
};

/** One real simulated result: small enough to run per-test. */
SweepResult
simulatedResult()
{
    GridSpec grid;
    grid.cores = {"rocket"};
    grid.workloads = {"vvadd"};
    grid.counterArchs = {CounterArch::AddWires};
    grid.maxCycles = 200'000;
    const std::vector<SweepResult> results =
        runSweep(grid, SweepOptions{});
    EXPECT_EQ(results.size(), 1u);
    EXPECT_EQ(results.at(0).status, SweepStatus::Ok);
    return results.at(0);
}

TEST(ServeProtocol, SweepQueryRoundTrip)
{
    SweepQuery query;
    query.cores = {"rocket", "boom-large"};
    query.workloads = {"vvadd", "qsort", "towers"};
    query.archs = {CounterArch::Scalar, CounterArch::Distributed};
    query.maxCycles = 123'456'789;
    query.seed = 0xdeadbeefcafe;
    query.format = "csv";

    SweepQuery decoded;
    ASSERT_TRUE(decodeSweepQuery(encodeSweepQuery(query), decoded));
    EXPECT_EQ(decoded.cores, query.cores);
    EXPECT_EQ(decoded.workloads, query.workloads);
    EXPECT_EQ(decoded.archs, query.archs);
    EXPECT_EQ(decoded.maxCycles, query.maxCycles);
    EXPECT_EQ(decoded.seed, query.seed);
    EXPECT_EQ(decoded.format, query.format);
}

TEST(ServeProtocol, ReplyRoundTrips)
{
    SweepReply reply;
    reply.report = "core,workload\nrocket,vvadd\n";
    reply.points = 7;
    reply.cacheHits = 3;
    reply.simulated = 4;
    reply.allOk = false;

    SweepReply sweep_decoded;
    ASSERT_TRUE(
        decodeSweepReply(encodeSweepReply(reply), sweep_decoded));
    EXPECT_EQ(sweep_decoded.report, reply.report);
    EXPECT_EQ(sweep_decoded.points, reply.points);
    EXPECT_EQ(sweep_decoded.cacheHits, reply.cacheHits);
    EXPECT_EQ(sweep_decoded.simulated, reply.simulated);
    EXPECT_EQ(sweep_decoded.allOk, reply.allOk);

    WindowQuery window;
    window.storePath = "/tmp/some/store.icst";
    window.begin = 1'000;
    window.end = 2'000'000;
    window.coreWidth = 4;
    WindowQuery window_decoded;
    ASSERT_TRUE(decodeWindowQuery(encodeWindowQuery(window),
                                  window_decoded));
    EXPECT_EQ(window_decoded.storePath, window.storePath);
    EXPECT_EQ(window_decoded.begin, window.begin);
    EXPECT_EQ(window_decoded.end, window.end);
    EXPECT_EQ(window_decoded.coreWidth, window.coreWidth);
}

TEST(ServeProtocol, JobMessagesCarryBitExactResults)
{
    JobRequest request;
    request.point.core = "rocket";
    request.point.workload = "vvadd";
    request.point.counterArch = CounterArch::AddWires;
    request.point.maxCycles = 200'000;
    request.seed = 42;
    JobRequest request_decoded;
    ASSERT_TRUE(decodeJobRequest(encodeJobRequest(request),
                                 request_decoded));
    EXPECT_EQ(request_decoded.point.core, request.point.core);
    EXPECT_EQ(request_decoded.point.workload,
              request.point.workload);
    EXPECT_EQ(request_decoded.point.counterArch,
              request.point.counterArch);
    EXPECT_EQ(request_decoded.point.maxCycles,
              request.point.maxCycles);
    EXPECT_EQ(request_decoded.seed, request.seed);

    // The reply embeds the journal result codec; the decoded result
    // must re-encode to the same bytes (bit-exact doubles included).
    JobReply reply;
    reply.ok = true;
    reply.result = simulatedResult();
    JobReply reply_decoded;
    ASSERT_TRUE(decodeJobReply(encodeJobReply(reply),
                               reply_decoded));
    EXPECT_TRUE(reply_decoded.ok);
    EXPECT_EQ(encodeSweepResult(reply_decoded.result),
              encodeSweepResult(reply.result));
}

TEST(ServeProtocol, TruncatedPayloadsNeverDecode)
{
    // Every strict prefix of a valid payload must be rejected: the
    // decoders bounds-check every read and demand full consumption,
    // so a torn buffer can never alias a shorter valid message.
    SweepQuery query;
    query.cores = {"rocket"};
    query.workloads = {"vvadd", "qsort"};
    query.format = "json";
    const std::string encoded = encodeSweepQuery(query);
    for (size_t len = 0; len < encoded.size(); len++) {
        SweepQuery decoded;
        EXPECT_FALSE(
            decodeSweepQuery(encoded.substr(0, len), decoded))
            << "prefix of length " << len << " decoded";
    }

    JobReply reply;
    reply.ok = true;
    reply.result = simulatedResult();
    const std::string reply_bytes = encodeJobReply(reply);
    for (size_t len = 0; len < reply_bytes.size(); len++) {
        JobReply decoded;
        EXPECT_FALSE(
            decodeJobReply(reply_bytes.substr(0, len), decoded))
            << "prefix of length " << len << " decoded";
    }
}

TEST(ServeProtocol, OverloadNoticeRoundTripsAndRejectsTornPrefixes)
{
    OverloadNotice notice;
    notice.retryAfterMs = 75;
    notice.reason = "queue";
    const std::string encoded = encodeOverloadNotice(notice);

    OverloadNotice decoded;
    ASSERT_TRUE(decodeOverloadNotice(encoded, decoded));
    EXPECT_EQ(decoded.retryAfterMs, notice.retryAfterMs);
    EXPECT_EQ(decoded.reason, notice.reason);

    // Shed notices ride the same torn-frame-prone wire as every
    // other reply: every strict prefix must be rejected, never
    // misread as a shorter valid notice.
    for (size_t len = 0; len < encoded.size(); len++) {
        OverloadNotice torn;
        EXPECT_FALSE(
            decodeOverloadNotice(encoded.substr(0, len), torn))
            << "prefix of length " << len << " decoded";
    }
    // Trailing garbage is not full consumption either.
    OverloadNotice padded;
    EXPECT_FALSE(decodeOverloadNotice(encoded + "x", padded));
}

TEST(ServeProtocol, FramesRoundTripAndCorruptionIsDetected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    ASSERT_TRUE(writeFrame(fds[1], MsgType::Ping, "hello"));
    MsgType type;
    std::string payload;
    EXPECT_EQ(readFrame(fds[0], type, payload), FrameRead::Ok);
    EXPECT_EQ(type, MsgType::Ping);
    EXPECT_EQ(payload, "hello");

    // A peer that closes cleanly between frames reads as Eof...
    ::close(fds[1]);
    EXPECT_EQ(readFrame(fds[0], type, payload), FrameRead::Eof);
    ::close(fds[0]);

    // ...while garbage where the magic belongs is a hard Error.
    ASSERT_EQ(::pipe(fds), 0);
    const char garbage[] = "this is not a frame at all........";
    ASSERT_EQ(::write(fds[1], garbage, sizeof garbage),
              static_cast<ssize_t>(sizeof garbage));
    ::close(fds[1]);
    EXPECT_EQ(readFrame(fds[0], type, payload), FrameRead::Error);
    ::close(fds[0]);

    // A flipped payload bit fails the CRC even with intact framing.
    ASSERT_EQ(::pipe(fds), 0);
    {
        int capture[2];
        ASSERT_EQ(::pipe(capture), 0);
        ASSERT_TRUE(writeFrame(capture[1], MsgType::Ping, "hello"));
        ::close(capture[1]);
        std::string raw(64, '\0');
        const ssize_t got = ::read(capture[0], raw.data(),
                                   raw.size());
        ASSERT_GT(got, 0);
        raw.resize(static_cast<size_t>(got));
        ::close(capture[0]);
        raw[raw.size() - 5] ^= 0x01; // last payload byte
        ASSERT_EQ(::write(fds[1], raw.data(), raw.size()),
                  static_cast<ssize_t>(raw.size()));
        ::close(fds[1]);
    }
    EXPECT_EQ(readFrame(fds[0], type, payload), FrameRead::Error);
    ::close(fds[0]);
}

TEST(ServeCache, KeyIsDeterministicAndCoversEveryAxis)
{
    SweepPoint point;
    point.core = "rocket";
    point.workload = "vvadd";
    point.counterArch = CounterArch::AddWires;
    point.maxCycles = 1'000'000;

    const ServeKey key = serveCacheKey(point, 7);
    EXPECT_EQ(serveCacheKey(point, 7).hash, key.hash);
    EXPECT_EQ(serveCacheKey(point, 7).blob, key.blob);

    // Every field that can change the result must change the blob
    // (the authoritative identity) and, in practice, the hash.
    const auto differs = [&](const SweepPoint &p, u64 seed) {
        const ServeKey other = serveCacheKey(p, seed);
        EXPECT_NE(other.blob, key.blob);
        EXPECT_NE(other.hash, key.hash);
    };
    SweepPoint other = point;
    other.core = "boom-large";
    differs(other, 7);
    other = point;
    other.workload = "qsort";
    differs(other, 7);
    other = point;
    other.counterArch = CounterArch::Distributed;
    differs(other, 7);
    other = point;
    other.maxCycles = 2'000'000;
    differs(other, 7);
    other = point;
    other.withTrace = true;
    differs(other, 7);
    differs(point, 8);
}

TEST(ServeCache, HashCollisionsDegradeToMisses)
{
    TempDir dir("serve_cache_collision");
    ResultCache cache(dir.path);
    const SweepResult result = simulatedResult();
    const ServeKey key = serveCacheKey(result.point, 0);
    cache.publish(key, result);

    // Forge a different point whose blob lands on the same file
    // name. The double-CRC32 scheme this replaced had only 32 bits
    // of entropy (hi was a function of lo) and trivially
    // constructible collisions; with the blob embedded in the entry
    // and byte-compared on lookup, even a perfect hash collision is
    // a miss, never the other point's result.
    ServeKey collider = serveCacheKey(result.point, 1);
    ASSERT_NE(collider.blob, key.blob);
    collider.hash = key.hash;
    SweepResult loaded;
    EXPECT_FALSE(cache.lookup(collider, loaded));
    // The entry itself is intact: the true key still hits.
    EXPECT_TRUE(cache.lookup(key, loaded));
}

TEST(ServeCache, PublishThenLookupIsBitExact)
{
    TempDir dir("serve_cache_roundtrip");
    ResultCache cache(dir.path);
    const SweepResult result = simulatedResult();
    const ServeKey key = serveCacheKey(result.point, 0);

    SweepResult loaded;
    EXPECT_FALSE(cache.lookup(key, loaded)); // cold
    cache.publish(key, result);
    EXPECT_EQ(cache.entriesOnDisk(), 1u);
    ASSERT_TRUE(cache.lookup(key, loaded));
    EXPECT_EQ(encodeSweepResult(loaded), encodeSweepResult(result));
}

TEST(ServeCache, DamagedEntriesDegradeToMisses)
{
    TempDir dir("serve_cache_damage");
    ResultCache cache(dir.path);
    const SweepResult result = simulatedResult();
    const ServeKey key = serveCacheKey(result.point, 0);
    cache.publish(key, result);
    const std::string path = cache.entryPath(key.hash);

    // A single flipped payload bit fails the envelope CRC.
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        file.seekp(-3, std::ios::end);
        char byte;
        file.seekg(-3, std::ios::end);
        file.get(byte);
        byte = static_cast<char>(byte ^ 0x10);
        file.seekp(-3, std::ios::end);
        file.put(byte);
    }
    SweepResult loaded;
    EXPECT_FALSE(cache.lookup(key, loaded));

    // Truncation (a torn write that escaped rename) is also a miss.
    cache.publish(key, result);
    ASSERT_TRUE(cache.lookup(key, loaded));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(cache.lookup(key, loaded));

    // A different point's entry served under this name (a renamed
    // or copied file) fails the embedded-blob comparison.
    const ServeKey other = serveCacheKey(result.point, 1);
    cache.publish(other, result);
    std::filesystem::copy_file(
        cache.entryPath(other.hash), path,
        std::filesystem::copy_options::overwrite_existing);
    EXPECT_FALSE(cache.lookup(key, loaded));

    // In-flight tmp files are invisible to the entry count.
    {
        std::ofstream tmp(dir.path + "/feedfacefeedface.res.tmp",
                          std::ios::binary);
        tmp << "torn";
    }
    EXPECT_EQ(cache.entriesOnDisk(), 2u); // both seeds' files, no .tmp
}

TEST(ServePool, WedgedWorkerIsKilledNotWaitedOn)
{
    // hang@job#0 makes the worker's first job stall (200ms in the
    // unbounded child) — long past the 100ms dispatch deadline. The
    // pool must SIGKILL and respawn the wedged worker instead of
    // blocking in readFrame forever with the shard mutex held; the
    // fresh worker hangs again (its own fault plan copy), so the job
    // fails after exactly one restart.
    setFaultSpec("hang@job#0");
    WorkerPool pool(1, 100);
    JobRequest request;
    request.point.core = "rocket";
    request.point.workload = "vvadd";
    request.point.counterArch = CounterArch::AddWires;
    request.point.maxCycles = 200'000;
    JobReply reply;
    std::string error;
    const bool ok = pool.runJob(0, request, reply, error);
    setFaultSpec("");
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("timed out"), std::string::npos) << error;
    EXPECT_EQ(pool.restarts(), 1u);
}

TEST(ServeEndToEnd, LiveSocketIsRefusedStaleSocketReclaimed)
{
    TempDir dir("serve_socket_guard");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 1;
    {
        IcicleServer server(options);
        std::thread daemon([&] { server.run(); });
        // A second daemon on the same path must refuse to start, not
        // silently unlink the live daemon's socket out from under it.
        EXPECT_THROW(IcicleServer second(options), FatalError);
        ServeClient client(options.socketPath);
        client.shutdown();
        daemon.join();
    }
    // A stale socket file — bound, then abandoned without unlink,
    // as a SIGKILLed daemon leaves — answers the probe with
    // ECONNREFUSED and is reclaimed.
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, options.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd);
    }
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });
    ServeClient client(options.socketPath);
    EXPECT_EQ(client.ping("alive"), "alive");
    client.shutdown();
    daemon.join();
}

TEST(ServeEndToEnd, CachedRepliesAreByteIdentical)
{
    TempDir dir("serve_e2e");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 2;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });

    {
        ServeClient client(options.socketPath);
        EXPECT_EQ(client.ping("roundtrip"), "roundtrip");

        SweepQuery query;
        query.cores = {"rocket"};
        query.workloads = {"vvadd", "towers"};
        query.archs = {CounterArch::AddWires};
        query.maxCycles = 200'000;
        query.format = "csv";

        const SweepReply cold = client.sweep(query);
        EXPECT_EQ(cold.points, 2u);
        EXPECT_EQ(cold.cacheHits, 0u);
        EXPECT_EQ(cold.simulated, 2u);
        EXPECT_TRUE(cold.allOk);

        const SweepReply warm = client.sweep(query);
        EXPECT_EQ(warm.points, 2u);
        EXPECT_EQ(warm.cacheHits, 2u);
        EXPECT_EQ(warm.simulated, 0u);
        // The headline guarantee: the cached report is the simulated
        // report, byte for byte.
        EXPECT_EQ(warm.report, cold.report);

        // A different seed partitions the cache: same grid, miss.
        query.seed = 99;
        const SweepReply reseeded = client.sweep(query);
        EXPECT_EQ(reseeded.cacheHits, 0u);
        EXPECT_EQ(reseeded.report, cold.report);

        const std::string stats = client.stats();
        EXPECT_NE(stats.find("cache_hits: 2"), std::string::npos)
            << stats;
        EXPECT_NE(stats.find("cache_entries: 4"), std::string::npos)
            << stats;

        // Invalid requests get an Error reply, not a dead daemon.
        SweepQuery bad = query;
        bad.workloads = {"no-such-workload"};
        EXPECT_THROW(client.sweep(bad), FatalError);
    }
    {
        // The daemon survived the error; a fresh client still works.
        ServeClient client(options.socketPath);
        client.ping();
        client.shutdown();
    }
    daemon.join();
}

// ---- overload protection and client resilience ----------------------

/**
 * stall@read regression for the per-attempt reply deadline: a daemon
 * that takes a frame but stalls before reading the next one must not
 * hang the client past attemptTimeoutMs — the timeout fires, the
 * client reconnects, and the retry (a fresh read ordinal) succeeds.
 */
TEST(ServeEndToEnd, StalledDaemonReadTripsClientTimeoutThenRetries)
{
    TempDir dir("serve_stall_read");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 1;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });

    // Armed before the first connection, so the very first
    // server-side frame read (ordinal 0) stalls well past the
    // client's 200ms attempt deadline.
    setFaultSpec("stall@read#0=1000");
    ClientOptions copts;
    copts.attemptTimeoutMs = 200;
    copts.backoffBaseMs = 10;
    {
        ServeClient client(options.socketPath, copts);
        EXPECT_EQ(client.ping("still-there"), "still-there");
        EXPECT_GE(client.timeouts(), 1u);
        EXPECT_GE(client.retries(), 1u);
    }
    setFaultSpec("");

    ServeClient finisher(options.socketPath);
    finisher.shutdown();
    daemon.join();
}

/**
 * Admission gate, stage 1: with the connection cap full, further
 * connections are shed with an Overloaded notice (visible in the
 * client's counters and the daemon's), and once the cap frees the
 * same retry policy gets a client through — shedding preserves
 * availability instead of letting load wedge the daemon.
 */
TEST(ServeEndToEnd, ConnectionCapShedsThenRecovers)
{
    TempDir dir("serve_shed_conns");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 1;
    options.maxConns = 1;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });

    auto holder = std::make_unique<ServeClient>(options.socketPath);
    EXPECT_EQ(holder->ping("occupy"), "occupy");

    // While the one admitted connection lives, every attempt of a
    // second client is shed until its retry budget runs out.
    {
        ClientOptions copts;
        copts.maxRetries = 2;
        copts.backoffBaseMs = 5;
        copts.backoffCapMs = 20;
        ServeClient shed(options.socketPath, copts);
        EXPECT_THROW(shed.ping(), FatalError);
        EXPECT_GE(shed.shedsSeen(), 1u);
        EXPECT_EQ(shed.attempts(), 3u); // first try + 2 retries
    }

    // Cap freed: a default-policy client absorbs any straggling shed
    // (the daemon counts the holder's close asynchronously) and gets
    // admitted.
    holder.reset();
    ServeClient after(options.socketPath);
    EXPECT_EQ(after.ping("admitted"), "admitted");
    const std::string stats = after.stats();
    EXPECT_GE(statsValue(stats, "shed_conns"), 3u);
    after.shutdown();
    daemon.join();
}

/**
 * Admission gate, stage 2: with one shard and a one-deep miss queue,
 * a second concurrent miss is shed with a retry hint instead of
 * convoying on the shard mutex — and the shed client's retry/backoff
 * absorbs it, succeeding once the shard drains.
 */
TEST(ServeEndToEnd, QueueCapShedsMissesUntilTheShardDrains)
{
    TempDir dir("serve_shed_queue");
    // The slow miss is manufactured, not simulated: hang@job stalls
    // the occupant's job in its worker for a bounded beat (~200ms in
    // the unbounded child) before it completes — the micro workloads
    // themselves finish far too fast to hold a queue slot reliably.
    // Armed before the fork so the workers inherit it; the 500ms job
    // deadline is headroom above the stall, so no worker is killed.
    setFaultSpec("hang@job#0");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 1;
    options.maxQueue = 1;
    options.retryAfterMs = 10;
    options.jobTimeoutMs = 500;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });

    SweepQuery slow;
    slow.cores = {"rocket"};
    slow.workloads = {"towers"};
    slow.archs = {CounterArch::AddWires};
    slow.maxCycles = 50'000;
    slow.format = "csv";
    SweepQuery blocked = slow;
    blocked.workloads = {"vvadd"};

    std::thread occupant([&] {
        ServeClient a(options.socketPath);
        // The job stalls in the worker for its ~200ms hang beat and
        // then completes — well inside the 500ms deadline, but long
        // enough to hold the single queue slot while B knocks.
        const SweepReply reply = a.sweep(slow);
        EXPECT_TRUE(reply.allOk);
    });
    // Let the stalled miss take the single queue slot, then disarm
    // so any worker forked from here on starts from the clean plan.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    setFaultSpec("");
    ClientOptions copts;
    copts.maxRetries = 50;
    copts.backoffBaseMs = 10;
    copts.backoffCapMs = 50;
    ServeClient b(options.socketPath, copts);
    const SweepReply reply = b.sweep(blocked);
    EXPECT_TRUE(reply.allOk);
    occupant.join();

    EXPECT_GE(b.shedsSeen(), 1u);
    EXPECT_GE(statsValue(b.stats(), "shed_requests"), 1u);
    b.shutdown();
    daemon.join();
}

/**
 * Graceful degradation: persistent cache-publish failure (injected
 * ENOSPC at the StoreWrite site) must flip the daemon into
 * compute-only serving after degradedAfter consecutive strikes —
 * requests keep succeeding with byte-identical reports, they just
 * stop memoising. The workers were forked before the spec was armed,
 * so only the parent-side publish path sees the fault.
 */
TEST(ServeEndToEnd, PersistentPublishFailureDegradesToComputeOnly)
{
    TempDir dir("serve_degraded");
    ServerOptions options;
    options.socketPath = dir.path + "/icicled.sock";
    options.cacheDir = dir.path + "/cache";
    options.shards = 1;
    options.degradedAfter = 2;
    IcicleServer server(options);
    std::thread daemon([&] { server.run(); });
    setFaultSpec("enospc@store#0,enospc@store#1");

    ServeClient client(options.socketPath);
    SweepQuery query;
    query.cores = {"rocket"};
    query.workloads = {"vvadd", "towers"};
    query.archs = {CounterArch::AddWires};
    query.maxCycles = 200'000;
    query.format = "csv";

    // Both publishes fail: the requests still succeed (the computed
    // result in hand is correct), and strike two flips degraded.
    const SweepReply cold = client.sweep(query);
    EXPECT_TRUE(cold.allOk);
    EXPECT_EQ(cold.simulated, 2u);
    EXPECT_TRUE(server.isDegraded());

    // Degraded = compute-only: the same grid misses and
    // re-simulates, with byte-identical output.
    const SweepReply again = client.sweep(query);
    EXPECT_TRUE(again.allOk);
    EXPECT_EQ(again.cacheHits, 0u);
    EXPECT_EQ(again.simulated, 2u);
    EXPECT_EQ(again.report, cold.report);

    const std::string stats = client.stats();
    EXPECT_GE(statsValue(stats, "publish_failures"), 2u);
    EXPECT_EQ(statsValue(stats, "degraded"), 1u);
    EXPECT_GE(statsValue(stats, "degraded_points"), 2u);
    setFaultSpec("");
    client.shutdown();
    daemon.join();
}

// ---- ServeStats torn-snapshot contract ------------------------------

/**
 * The hammer behind server.hh's documented contract: counters are
 * individually monotonic, every mid-flight snapshot satisfies
 * cacheHits + cacheMisses >= points, and a quiescent snapshot is
 * exact. A failed pin here means someone weakened the release/acquire
 * pairing in countPoint()/snapshot().
 */
TEST(ServeStats, SnapshotsAreMonotonicAndPinned)
{
    ServeStats stats;
    constexpr u64 kThreads = 4;
    constexpr u64 kPerThread = 20'000;
    std::vector<std::thread> writers;
    for (u64 t = 0; t < kThreads; t++) {
        writers.emplace_back([&stats, t] {
            for (u64 i = 0; i < kPerThread; i++) {
                stats.requests.fetch_add(
                    1, std::memory_order_relaxed);
                stats.countPoint(/*hit=*/(i + t) % 2 == 0);
            }
        });
    }

    ServeStats::Snapshot last;
    for (int probe = 0; probe < 2'000; probe++) {
        const ServeStats::Snapshot snap = stats.snapshot();
        // Individually monotonic: no counter ever goes backwards.
        EXPECT_GE(snap.points, last.points);
        EXPECT_GE(snap.cacheHits, last.cacheHits);
        EXPECT_GE(snap.cacheMisses, last.cacheMisses);
        EXPECT_GE(snap.requests, last.requests);
        // The pinned cross-counter relation, valid mid-flight.
        EXPECT_GE(snap.cacheHits + snap.cacheMisses, snap.points);
        last = snap;
    }
    for (std::thread &writer : writers)
        writer.join();

    // Quiescent: exact.
    const ServeStats::Snapshot done = stats.snapshot();
    EXPECT_EQ(done.points, kThreads * kPerThread);
    EXPECT_EQ(done.requests, kThreads * kPerThread);
    EXPECT_EQ(done.cacheHits + done.cacheMisses, done.points);
    EXPECT_EQ(done.cacheHits, kThreads * kPerThread / 2);
    EXPECT_EQ(done.simulated, done.cacheMisses);
}

// ---- fork safety -----------------------------------------------------

/**
 * The PR-8 wedged-worker class, pinned as a checkable rule: forking a
 * worker while the forking thread holds any icicle lock outside the
 * dispatch pair hands the child a mutex nobody will ever unlock.
 * WorkerPool::spawn() consults the lock-order runtime's held-lock
 * stack; holding an unrelated lock across pool construction must
 * record a SYNC-003 violation, and ordinary pool use must not.
 */
TEST(ServePool, ForkWhileHoldingForeignLockIsViolation)
{
    lockorder::setLockOrderEnabled(true);
    lockorder::resetLockOrder();
    const u64 before = lockorder::forkViolations();
    {
        // Normal construction + a round of jobs: fork-safe.
        WorkerPool pool(1);
        JobRequest request;
        request.point.core = "rocket";
        request.point.workload = "vvadd";
        request.point.counterArch = CounterArch::AddWires;
        request.point.maxCycles = 50'000;
        JobReply reply;
        std::string error;
        ASSERT_TRUE(pool.runJob(0, request, reply, error)) << error;
        EXPECT_TRUE(reply.ok);
    }
    EXPECT_EQ(lockorder::forkViolations(), before);

    {
        Mutex unrelated("test.serve.fork.unrelated",
                        lockrank::kTestBase);
        LockGuard held(unrelated);
        WorkerPool pool(1);
    }
    EXPECT_EQ(lockorder::forkViolations(), before + 1);
    const lockorder::LockOrderReport report =
        lockorder::lockOrderReport();
    bool recorded = false;
    for (const auto &violation : report.violations) {
        recorded |= violation.kind == "fork-held-lock" &&
                    violation.message.find(
                        "test.serve.fork.unrelated") !=
                        std::string::npos;
    }
    EXPECT_TRUE(recorded);
    lockorder::resetLockOrder();
}

} // namespace
} // namespace icicle
