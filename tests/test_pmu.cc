/**
 * @file
 * PMU tests: Table I event metadata, the event bus, the three counter
 * architectures of §IV-B (including the distributed design's
 * undercount bound and the paper's worked example), and the CSR-file
 * protocol of §IV-D.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "pmu/counters.hh"
#include "pmu/csr.hh"
#include "pmu/event.hh"

namespace icicle
{
namespace
{

// ------------------------------------------------------- Table I

TEST(Events, IcicleAddsThreeEventsToRocket)
{
    u32 added = 0;
    for (u32 e = 0; e < kNumEvents; e++) {
        const EventInfo info =
            eventInfo(CoreKind::Rocket, static_cast<EventId>(e));
        if (info.supported && info.addedByIcicle)
            added++;
    }
    EXPECT_EQ(added, 3u); // inst-issued, fetch-bubbles, recovering
}

TEST(Events, IcicleAddsSevenEventsToBoom)
{
    u32 added = 0;
    for (u32 e = 0; e < kNumEvents; e++) {
        const EventInfo info =
            eventInfo(CoreKind::Boom, static_cast<EventId>(e));
        if (info.supported && info.addedByIcicle)
            added++;
    }
    EXPECT_EQ(added, 7u);
}

TEST(Events, BoomNewEventsLiveInTmaSet)
{
    for (EventId id : {EventId::UopsIssued, EventId::FetchBubbles,
                       EventId::Recovering, EventId::UopsRetired,
                       EventId::FenceRetired, EventId::ICacheBlocked,
                       EventId::DCacheBlocked}) {
        EXPECT_EQ(eventInfo(CoreKind::Boom, id).set, EventSetId::Tma)
            << eventName(id);
    }
    // On Rocket the blocked events are legacy microarch events.
    EXPECT_EQ(eventInfo(CoreKind::Rocket, EventId::ICacheBlocked).set,
              EventSetId::Microarch);
}

TEST(Events, MaskBitsAreDenseAndUnique)
{
    for (CoreKind core : {CoreKind::Rocket, CoreKind::Boom}) {
        for (u32 s = 0; s < static_cast<u32>(EventSetId::NumSets); s++) {
            const auto events =
                eventsInSet(core, static_cast<EventSetId>(s));
            for (u64 i = 0; i < events.size(); i++)
                EXPECT_EQ(maskBitOf(core, events[i]),
                          static_cast<int>(i));
        }
    }
}

TEST(EventBus, RaiseAndCount)
{
    EventBus bus;
    bus.setNumSources(EventId::UopsIssued, 5);
    bus.raise(EventId::UopsIssued, 0);
    bus.raise(EventId::UopsIssued, 3);
    EXPECT_EQ(bus.count(EventId::UopsIssued), 2u);
    EXPECT_TRUE(bus.any(EventId::UopsIssued));
    EXPECT_EQ(bus.mask(EventId::UopsIssued), 0b1001u);
    bus.clear();
    EXPECT_EQ(bus.count(EventId::UopsIssued), 0u);
}

TEST(EventBus, RaiseLanes)
{
    EventBus bus;
    bus.raiseLanes(EventId::FetchBubbles, 3);
    EXPECT_EQ(bus.mask(EventId::FetchBubbles), 0b111u);
}

// -------------------------------------- counter architectures

class CounterArchTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    CounterArch arch() const
    {
        return static_cast<CounterArch>(std::get<0>(GetParam()));
    }
    u32 sources() const
    {
        return static_cast<u32>(std::get<1>(GetParam()));
    }
    u64 Seed() const
    {
        return 1000 + std::get<0>(GetParam()) * 37 +
               std::get<1>(GetParam());
    }
};

TEST_P(CounterArchTest, CorrectedValueIsExact)
{
    // Property: for any event stream, corrected() equals the true
    // total for every architecture.
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, sources());
    auto counter = makeCounter(arch(), EventId::FetchBubbles,
                               sources());
    Rng rng(Seed());
    u64 truth = 0;
    for (u32 cycle = 0; cycle < 5000; cycle++) {
        bus.clear();
        for (u32 s = 0; s < sources(); s++) {
            if (rng.chance(1, 3)) {
                bus.raise(EventId::FetchBubbles, s);
                truth++;
            }
        }
        counter->tick(bus);
    }
    EXPECT_EQ(counter->corrected(), truth);
}

TEST_P(CounterArchTest, ReadNeverOvercounts)
{
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, sources());
    auto counter = makeCounter(arch(), EventId::FetchBubbles,
                               sources());
    Rng rng(Seed() + 7);
    u64 truth = 0;
    for (u32 cycle = 0; cycle < 3000; cycle++) {
        bus.clear();
        for (u32 s = 0; s < sources(); s++) {
            if (rng.chance(1, 2)) {
                bus.raise(EventId::FetchBubbles, s);
                truth++;
            }
        }
        counter->tick(bus);
    }
    // Distributed read() is in units of 2^width; scale before
    // comparing.
    u64 read_events = counter->read();
    if (arch() == CounterArch::Distributed) {
        auto *dist = static_cast<DistributedCounter *>(counter.get());
        read_events = dist->read() * (1ull << dist->localWidth());
        EXPECT_LE(truth - read_events, dist->undercountBound());
    }
    EXPECT_LE(read_events, truth);
}

INSTANTIATE_TEST_SUITE_P(
    ArchBySources, CounterArchTest,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(1, 2, 3, 4, 5, 8, 9)),
    [](const auto &info) {
        std::string name = counterArchName(
            static_cast<CounterArch>(std::get<0>(info.param)));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(ScalarCounter, PerLaneValuesTracked)
{
    EventBus bus;
    bus.setNumSources(EventId::UopsIssued, 3);
    ScalarCounter counter(EventId::UopsIssued, 3);
    for (int i = 0; i < 10; i++) {
        bus.clear();
        bus.raise(EventId::UopsIssued, 0);
        if (i % 2 == 0)
            bus.raise(EventId::UopsIssued, 2);
        counter.tick(bus);
    }
    EXPECT_EQ(counter.lane(0), 10u);
    EXPECT_EQ(counter.lane(1), 0u);
    EXPECT_EQ(counter.lane(2), 5u);
    EXPECT_EQ(counter.read(), 15u);
    EXPECT_EQ(counter.hwCounters(), 3u);
}

TEST(AddWiresCounter, CountsConcurrentSourcesExactly)
{
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, 4);
    AddWiresCounter counter(EventId::FetchBubbles, 4);
    bus.raiseLanes(EventId::FetchBubbles, 4);
    counter.tick(bus);
    counter.tick(bus);
    EXPECT_EQ(counter.read(), 8u);
    EXPECT_EQ(counter.hwCounters(), 1u);
    EXPECT_EQ(counter.chainLength(), 3u);
}

TEST(DistributedCounter, PaperWorkedExample)
{
    // §IV-B: fetch width 4 -> 4 sources, each local counter counts to
    // 3 before overflowing at 4 = 2^2; worst-case end-of-run
    // undercount is sources x 2^2 = 16 (the paper quotes 12 counting
    // only the pre-overflow residue of 3 per counter).
    DistributedCounter counter(EventId::FetchBubbles, 4);
    EXPECT_EQ(counter.localWidth(), 2u);
    EXPECT_EQ(counter.undercountBound(), 16u);

    // Drive 929 fetch bubbles (the paper's smallest benchmark count)
    // through a single lane and check the relative error bound.
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, 4);
    Rng rng(929);
    u64 truth = 0;
    while (truth < 929) {
        bus.clear();
        const u32 lane = static_cast<u32>(rng.below(4));
        bus.raise(EventId::FetchBubbles, lane);
        truth++;
        counter.tick(bus);
    }
    const u64 visible = counter.read() * 4;
    EXPECT_LE(truth - visible, counter.undercountBound());
    const double rel_err =
        static_cast<double>(truth - visible) /
        static_cast<double>(truth);
    EXPECT_LT(rel_err, 0.02); // paper: 1.28% worst case
    EXPECT_EQ(counter.corrected(), truth);
}

TEST(DistributedCounter, ArbiterDrainsOneOverflowPerCycle)
{
    // All four sources fire every cycle: each local counter wraps
    // every 4 cycles, exactly matching the one-per-cycle drain rate,
    // so the principal counter never falls behind by more than the
    // bound.
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, 4);
    DistributedCounter counter(EventId::FetchBubbles, 4);
    for (u32 c = 0; c < 4000; c++) {
        bus.clear();
        bus.raiseLanes(EventId::FetchBubbles, 4);
        counter.tick(bus);
    }
    const u64 truth = 4000 * 4;
    EXPECT_LE(truth - counter.read() * 4, counter.undercountBound());
    EXPECT_EQ(counter.corrected(), truth);
}

// ----------------------------------------------------------- CsrFile

TEST(CsrFile, SelectorEncoding)
{
    const u64 sel = csr::selector(EventSetId::Tma, 0b101, 3);
    EXPECT_EQ(sel & 0xff, 3u);          // set id
    EXPECT_EQ((sel >> 8) & 0xffff, 0b101u);
    EXPECT_EQ(sel >> 56, 3u);           // lane+1
}

TEST(CsrFile, FourStepProtocolCounts)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::Scalar, &bus);
    // (2)+(3) configure counter 0 for the branch-mispredict event.
    csrs.programEvent(0, EventId::BranchMispredict);
    // Counters start inhibited; nothing counts yet.
    bus.clear();
    bus.raise(EventId::BranchMispredict);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(0), 0u);
    // (4) clear inhibit.
    csrs.setInhibit(false);
    csrs.tick(bus);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(0), 2u);
}

TEST(CsrFile, LegacyOrSemantics)
{
    // Fig. 1: two events on the same (scalar) counter asserting in
    // the same cycle increment it by only one.
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::Scalar, &bus);
    csrs.program(0, {EventId::ICacheMiss, EventId::DCacheMiss});
    csrs.setInhibit(false);
    bus.clear();
    bus.raise(EventId::ICacheMiss);
    bus.raise(EventId::DCacheMiss);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(0), 1u);
}

TEST(CsrFile, AddWiresCountsBothEvents)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::AddWires, &bus);
    csrs.program(0, {EventId::ICacheMiss, EventId::DCacheMiss});
    csrs.setInhibit(false);
    bus.clear();
    bus.raise(EventId::ICacheMiss);
    bus.raise(EventId::DCacheMiss);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(0), 2u);
}

TEST(CsrFile, MixedSetMappingRejected)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::Scalar, &bus);
    // ICacheMiss is Memory-set, Flush is Microarch-set on Rocket.
    const std::vector<EventId> mixed = {EventId::ICacheMiss,
                                        EventId::Flush};
    EXPECT_THROW(csrs.program(0, mixed), FatalError);
}

TEST(CsrFile, LaneSelectIsolatesOneSource)
{
    EventBus bus;
    bus.setNumSources(EventId::UopsIssued, 5);
    CsrFile csrs(CoreKind::Boom, CounterArch::Scalar, &bus);
    csrs.program(0, {EventId::UopsIssued}, 3); // lane 2 only
    csrs.setInhibit(false);
    bus.clear();
    bus.raise(EventId::UopsIssued, 0);
    bus.raise(EventId::UopsIssued, 2);
    csrs.tick(bus);
    bus.clear();
    bus.raise(EventId::UopsIssued, 0);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(0), 1u);
}

TEST(CsrFile, CsrAddressMapReadWrite)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Boom, CounterArch::AddWires, &bus);
    csrs.writeCsr(csr::mcycle, 123);
    EXPECT_EQ(csrs.readCsr(csr::mcycle), 123u);
    EXPECT_EQ(csrs.readCsr(csr::cycle), 123u);
    csrs.writeCsr(csr::mcountinhibit, 0);
    bus.clear();
    csrs.tick(bus);
    EXPECT_EQ(csrs.readCsr(csr::mcycle), 124u);
    // Selector readback.
    const u64 sel = csr::selector(EventSetId::Tma, 1);
    csrs.writeCsr(csr::mhpmevent3 + 4, sel);
    EXPECT_EQ(csrs.readCsr(csr::mhpmevent3 + 4), sel);
    // Unknown CSRs read as zero.
    EXPECT_EQ(csrs.readCsr(0x123), 0u);
}

TEST(CsrFile, ClearCountersResetsValues)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Boom, CounterArch::AddWires, &bus);
    csrs.programEvent(2, EventId::Recovering);
    csrs.setInhibit(false);
    bus.clear();
    bus.raise(EventId::Recovering);
    csrs.tick(bus);
    EXPECT_EQ(csrs.hpmValue(2), 1u);
    csrs.clearCounters();
    EXPECT_EQ(csrs.hpmValue(2), 0u);
    EXPECT_EQ(csrs.cycles(), 0u);
}

// ------------------------------------- reliability degradation

TEST(CsrFile, SaturationLatchesInsteadOfSilentlyWrapping)
{
    // Counters implement csr::hpmWidth bits; a wrap must latch the
    // sticky saturation flag so the harness can mark the value
    // unreliable instead of reporting a silently truncated count.
    for (CounterArch arch :
         {CounterArch::Scalar, CounterArch::AddWires}) {
        SCOPED_TRACE(counterArchName(arch));
        EventBus bus;
        CsrFile csrs(CoreKind::Rocket, arch, &bus);
        csrs.programEvent(0, EventId::BranchMispredict);
        // Park the counter one increment below the implemented width
        // (writes while inhibited are protocol-clean).
        csrs.writeCsr(csr::mhpmcounter3, csr::hpmValueMask);
        EXPECT_FALSE(csrs.hpmSaturated(0));
        csrs.setInhibit(false);
        bus.clear();
        bus.raise(EventId::BranchMispredict);
        csrs.tick(bus);
        EXPECT_TRUE(csrs.hpmSaturated(0));
        EXPECT_EQ(csrs.hpmValue(0), 0u) << "value wraps like silicon";
        // Sticky: further clean ticks do not clear it.
        csrs.tick(bus);
        EXPECT_TRUE(csrs.hpmSaturated(0));
        // Reprogramming (inhibited) clears the flag.
        csrs.setInhibit(true);
        csrs.programEvent(0, EventId::BranchMispredict);
        EXPECT_FALSE(csrs.hpmSaturated(0));
    }
}

TEST(CsrFile, DistributedPrincipalSaturates)
{
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, 2);
    CsrFile csrs(CoreKind::Boom, CounterArch::Distributed, &bus);
    csrs.programEvent(0, EventId::FetchBubbles);
    csrs.writeCsr(csr::mhpmcounter3, csr::hpmValueMask);
    csrs.setInhibit(false);
    // Drive both lanes until a local counter overflows and the
    // arbiter drains it into the (parked) principal counter.
    for (u32 c = 0; c < 16 && !csrs.hpmSaturated(0); c++) {
        bus.clear();
        bus.raise(EventId::FetchBubbles, 0);
        bus.raise(EventId::FetchBubbles, 1);
        csrs.tick(bus);
    }
    EXPECT_TRUE(csrs.hpmSaturated(0));
}

TEST(CsrFile, ArmedWriteLatchesWhenInhibitProtocolIsSkipped)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::AddWires, &bus);
    csrs.programEvent(0, EventId::BranchMispredict);
    csrs.programEvent(1, EventId::ICacheMiss);
    // Protocol-clean so far: everything written while inhibited.
    EXPECT_FALSE(csrs.hpmArmedWrite(0));
    EXPECT_FALSE(csrs.hpmArmedWrite(1));

    csrs.setInhibit(false);
    // Writing the armed counter's value races the increment logic.
    csrs.writeCsr(csr::mhpmcounter3, 0);
    EXPECT_TRUE(csrs.hpmArmedWrite(0));
    EXPECT_FALSE(csrs.hpmArmedWrite(1)) << "flags are per-counter";
    // Reprogramming the armed counter's selector is also a breach.
    csrs.writeCsr(csr::mhpmevent3 + 1,
                  csrs.readCsr(csr::mhpmevent3 + 1));
    EXPECT_TRUE(csrs.hpmArmedWrite(1));

    // Inhibit, then reprogram: the clean protocol clears both flags.
    csrs.setInhibit(true);
    csrs.programEvent(0, EventId::BranchMispredict);
    csrs.programEvent(1, EventId::ICacheMiss);
    EXPECT_FALSE(csrs.hpmArmedWrite(0));
    EXPECT_FALSE(csrs.hpmArmedWrite(1));
}

TEST(CsrFile, InhibitedWritesNeverLatchArmedWrite)
{
    EventBus bus;
    CsrFile csrs(CoreKind::Rocket, CounterArch::Scalar, &bus);
    // Counters start inhibited: the four-step protocol's writes are
    // clean by construction.
    csrs.programEvent(3, EventId::DCacheMiss);
    csrs.writeCsr(csr::mhpmcounter3 + 3, 17);
    EXPECT_FALSE(csrs.hpmArmedWrite(3));
    EXPECT_FALSE(csrs.hpmSaturated(3));
}

TEST(CsrFile, DistributedHpmCorrected)
{
    EventBus bus;
    bus.setNumSources(EventId::FetchBubbles, 3);
    CsrFile csrs(CoreKind::Boom, CounterArch::Distributed, &bus);
    csrs.programEvent(0, EventId::FetchBubbles);
    csrs.setInhibit(false);
    u64 truth = 0;
    Rng rng(5);
    for (u32 c = 0; c < 2000; c++) {
        bus.clear();
        for (u32 s = 0; s < 3; s++) {
            if (rng.chance(2, 5)) {
                bus.raise(EventId::FetchBubbles, s);
                truth++;
            }
        }
        csrs.tick(bus);
    }
    EXPECT_EQ(csrs.hpmCorrected(0), truth);
    EXPECT_LT(csrs.hpmValue(0), truth); // raw is in 2^w units
}

} // namespace
} // namespace icicle
