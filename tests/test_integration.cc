/**
 * @file
 * Cross-module integration tests: the full stack working together —
 * assembler -> core -> harness + tracer simultaneously -> TMA (in and
 * out of band) -> trace file -> analyzer -> VLSI report — plus
 * invariant sweeps across all BOOM sizes, workloads, and counter
 * architectures, and the bottom-up baseline's §II-B behaviour.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "core/session.hh"
#include "isa/assembler.hh"
#include "perf/harness.hh"
#include "perf/tma_tool.hh"
#include "tma/bottomup.hh"
#include "trace/trace.hh"
#include "vlsi/vlsi.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

TEST(Integration, FullStackPipeline)
{
    // 1. Assemble a program from text.
    const Program program = assemble(R"(
        .data
    arr: .dword 9, 1, 8, 2, 7, 3, 6, 4
        .text
        la   s0, arr
        li   s1, 200
    pass:
        li   t0, 0          # bubble-sort pass
    inner:
        slli t1, t0, 3
        add  t1, t1, s0
        ld   t2, 0(t1)
        ld   t3, 8(t1)
        ble  t2, t3, ordered
        sd   t3, 0(t1)
        sd   t2, 8(t1)
    ordered:
        addi t0, t0, 1
        li   t4, 7
        blt  t0, t4, inner
        addi s1, s1, -1
        bnez s1, pass
        ld   t5, 0(s0)       # smallest element must be 1
        addi a0, t5, -1      # -> exit 0 when sorted
        ecall
    )");

    // 2. Run it with the perf harness and a tracer attached at once.
    BoomConfig cfg = BoomConfig::large();
    cfg.counterArch = CounterArch::Distributed;
    BoomCore core(cfg, program);
    PerfHarness harness(core);
    harness.addTmaEvents();
    const TraceSpec spec = TraceSpec::tmaBundle(core);
    Trace trace(spec);
    // Harness drives ticks; capture the bus after each one.
    while (!core.done()) {
        harness.run(1);
        trace.capture(core.bus());
    }
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 0u);

    // 3. In-band counters == out-of-band totals == trace counts.
    EXPECT_EQ(harness.value(EventId::UopsRetired),
              core.total(EventId::UopsRetired));
    EXPECT_EQ(trace.countAllLanes(EventId::UopsRetired),
              core.total(EventId::UopsRetired));
    EXPECT_EQ(trace.numCycles(), core.cycle());

    // 4. TMA from the harness matches TMA from exact totals.
    const TmaResult in_band =
        computeTma(harness.tmaCounters(), tmaParamsFor(core));
    const TmaResult oob = analyzeTma(core);
    EXPECT_NEAR(in_band.retiring, oob.retiring, 1e-9);
    EXPECT_NEAR(in_band.memBound, oob.memBound, 1e-9);

    // 5. Trace survives a file round-trip and re-analyzes identically.
    const std::string path = "/tmp/icicle_integration.trace";
    writeTrace(trace, path);
    const Trace loaded = readTrace(path);
    TraceAnalyzer analyzer(loaded);
    const TmaResult windowed =
        analyzer.windowTma(0, loaded.numCycles(), core.coreWidth());
    EXPECT_NEAR(windowed.retiring, oob.retiring, 1e-9);
    std::remove(path.c_str());

    // 6. The VLSI model consumes this run's activity factors.
    const VlsiReport report = evaluateVlsi(
        cfg, CounterArch::Distributed, measureActivity(core));
    EXPECT_TRUE(report.meets200MHz);
    EXPECT_GT(report.powerOverheadPct, 0.0);
}

// ---- invariant matrix across sizes x workloads ----------------------

class SizeByWorkload
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static const std::vector<std::string> &
    names()
    {
        static const std::vector<std::string> list = {
            "towers", "qsort", "memcpy", "coremark"};
        return list;
    }
    BoomConfig config() const
    { return BoomConfig::allSizes()[std::get<0>(GetParam())]; }
    Program program() const
    { return buildWorkload(names()[std::get<1>(GetParam())]); }
};

TEST_P(SizeByWorkload, InvariantsHold)
{
    const BoomConfig cfg = config();
    BoomCore core(cfg, program());
    core.run(80'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 0u);

    // Architectural: retired instructions match the functional run.
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
    // Slot conservation.
    const u64 slots = core.cycle() * cfg.coreWidth;
    EXPECT_LE(core.total(EventId::UopsRetired), slots);
    EXPECT_GE(core.total(EventId::UopsIssued),
              core.total(EventId::UopsRetired));
    // TMA classes are a partition.
    const TmaResult r = analyzeTma(core);
    EXPECT_NEAR(r.retiring + r.badSpeculation + r.frontend + r.backend,
                1.0, 1e-9);
    EXPECT_GE(r.memBound, r.memBoundDram - 1e-12);
    EXPECT_LE(r.fetchLatency, r.frontend + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SizeByWorkload,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)),
    [](const auto &info) {
        return BoomConfig::allSizes()[std::get<0>(info.param)].name +
               "_" +
               std::to_string(std::get<1>(info.param));
    });

// ---- bottom-up baseline (§II-B) -------------------------------------

TEST(BottomUp, AccurateOnInOrderBlockingCache)
{
    RocketCore core(RocketConfig{}, buildWorkload("memcpy"));
    core.run(80'000'000);
    ASSERT_TRUE(core.done());
    const BottomUpResult r = computeBottomUp(core);
    EXPECT_GT(r.overestimate(), 0.8);
    EXPECT_LT(r.overestimate(), 1.25) << formatBottomUpLine(r);
}

TEST(BottomUp, OverestimatesOnOutOfOrder)
{
    // Streaming misses overlap under MSHRs: static costs overshoot.
    BoomCore core(BoomConfig::large(), buildWorkload("memcpy"));
    core.run(80'000'000);
    ASSERT_TRUE(core.done());
    const BottomUpResult r = computeBottomUp(core);
    EXPECT_GT(r.overestimate(), 2.0) << formatBottomUpLine(r);
}

TEST(BottomUp, SerialMissesStayAccurateEvenOoO)
{
    // A dependent pointer chase has no miss-level parallelism: the
    // static-cost assumption happens to hold.
    BoomCore core(BoomConfig::large(),
                  workloads::pointerChase(16384, 4000));
    core.run(80'000'000);
    ASSERT_TRUE(core.done());
    const BottomUpResult r = computeBottomUp(core);
    EXPECT_GT(r.overestimate(), 0.8);
    EXPECT_LT(r.overestimate(), 1.3) << formatBottomUpLine(r);
}

TEST(BottomUp, LineFormatting)
{
    RocketCore core(RocketConfig{}, buildWorkload("towers"));
    core.run(80'000'000);
    const BottomUpResult r = computeBottomUp(core);
    EXPECT_NE(formatBottomUpLine(r).find("actual"),
              std::string::npos);
}

} // namespace
} // namespace icicle
