/**
 * @file
 * Rocket core timing-model tests: pipeline invariants, interlock
 * events, branch-mispredict behaviour, and cache-blocking events.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "rocket/rocket.hh"

namespace icicle
{
namespace
{

using namespace reg;

Program
countdownLoop(u64 iterations)
{
    ProgramBuilder b("countdown");
    Label loop = b.newLabel();
    b.li(t0, static_cast<i64>(iterations));
    b.bind(loop);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

TEST(Rocket, RunsToCompletion)
{
    RocketCore core(RocketConfig{}, countdownLoop(100));
    const u64 cycles = core.run(100000);
    EXPECT_TRUE(core.done());
    EXPECT_GT(cycles, 0u);
    EXPECT_TRUE(core.executor().halted());
    EXPECT_EQ(core.executor().exitCode(), 0u);
}

TEST(Rocket, CyclesEventMatchesCycleCount)
{
    RocketCore core(RocketConfig{}, countdownLoop(50));
    const u64 cycles = core.run(100000);
    EXPECT_EQ(core.total(EventId::Cycles), cycles);
}

TEST(Rocket, RetiredMatchesExecutor)
{
    RocketCore core(RocketConfig{}, countdownLoop(200));
    core.run(1000000);
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
}

TEST(Rocket, IssuedAtLeastRetired)
{
    RocketCore core(RocketConfig{}, countdownLoop(200));
    core.run(1000000);
    EXPECT_GE(core.total(EventId::InstIssued),
              core.total(EventId::InstRetired));
}

TEST(Rocket, IpcIsAtMostOne)
{
    RocketCore core(RocketConfig{}, countdownLoop(1000));
    core.run(10000000);
    EXPECT_LE(core.total(EventId::InstRetired),
              core.total(EventId::Cycles));
}

TEST(Rocket, TightLoopIsNearIdealIpc)
{
    // A predictable countdown loop should retire close to one
    // instruction per cycle once the BHT warms up.
    RocketCore core(RocketConfig{}, countdownLoop(5000));
    core.run(10000000);
    const double ipc =
        static_cast<double>(core.total(EventId::InstRetired)) /
        static_cast<double>(core.total(EventId::Cycles));
    EXPECT_GT(ipc, 0.8) << "ipc=" << ipc;
}

TEST(Rocket, LoadUseInterlockRaised)
{
    ProgramBuilder b("loaduse");
    Label buf = b.dword(42);
    b.la(t0, buf);
    Label loop = b.newLabel();
    b.li(t2, 200);
    b.bind(loop);
    b.ld(t1, t0, 0);
    b.add(t3, t1, t1); // immediate consumer: load-use interlock
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(1000000);
    EXPECT_GT(core.total(EventId::LoadUseInterlock), 100u);
}

TEST(Rocket, NoLoadUseInterlockWhenScheduled)
{
    ProgramBuilder b("scheduled");
    Label buf = b.dword(42);
    b.la(t0, buf);
    Label loop = b.newLabel();
    b.li(t2, 200);
    b.bind(loop);
    b.ld(t1, t0, 0);
    b.addi(t2, t2, -1); // independent op fills the load-use slot
    b.add(t3, t1, t1);
    b.bnez(t2, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(1000000);
    EXPECT_LT(core.total(EventId::LoadUseInterlock), 10u);
}

TEST(Rocket, DivRaisesLongLatencyInterlock)
{
    ProgramBuilder b("div");
    b.li(t0, 1000);
    b.li(t1, 7);
    Label loop = b.newLabel();
    b.li(t2, 50);
    b.bind(loop);
    b.div(t3, t0, t1);
    b.add(t4, t3, t3); // waits ~32 cycles on the divider
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(1000000);
    EXPECT_GT(core.total(EventId::LongLatencyInterlock), 50 * 20u);
    EXPECT_GT(core.total(EventId::MulDivInterlock), 50 * 20u);
}

TEST(Rocket, UnpredictableBranchesCauseMispredicts)
{
    // Data-dependent branch on an LCG pseudo-random bit.
    ProgramBuilder b("brrandom");
    Label loop = b.newLabel();
    Label skip = b.newLabel();
    b.li(s0, 12345);
    b.li(s1, 1103515245);
    b.li(s2, 12345);
    b.li(t2, 2000);
    b.bind(loop);
    b.mul(s0, s0, s1);
    b.add(s0, s0, s2);
    b.srli(t0, s0, 16);
    b.andi(t0, t0, 1);
    b.beqz(t0, skip);
    b.addi(t3, t3, 1);
    b.bind(skip);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(10000000);
    // ~50% mispredict rate on 2000 random branches.
    EXPECT_GT(core.total(EventId::BranchMispredict), 400u);
    EXPECT_GT(core.total(EventId::Recovering), 400u);
}

TEST(Rocket, PredictableBranchesMostlyPredicted)
{
    RocketCore core(RocketConfig{}, countdownLoop(2000));
    core.run(10000000);
    EXPECT_LT(core.total(EventId::BranchMispredict), 20u);
}

TEST(Rocket, ColdICacheMissesThenWarm)
{
    RocketCore core(RocketConfig{}, countdownLoop(500));
    core.run(1000000);
    // The loop fits in one or two blocks: a couple of cold misses.
    EXPECT_GE(core.total(EventId::ICacheMiss), 1u);
    EXPECT_LT(core.total(EventId::ICacheMiss), 10u);
    EXPECT_GT(core.total(EventId::ICacheBlocked), 0u);
}

TEST(Rocket, DCacheMissOnLargeStride)
{
    ProgramBuilder b("stride");
    Label buf = b.space(64 * 1024);
    b.la(t0, buf);
    b.li(t1, 0);
    b.li(t2, 512);
    Label loop = b.newLabel();
    b.bind(loop);
    b.add(t3, t0, t1);
    b.ld(t4, t3, 0);
    b.addi(t1, t1, 128); // stride > block: every access misses
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(10000000);
    EXPECT_GT(core.total(EventId::DCacheMiss), 400u);
    EXPECT_GT(core.total(EventId::DCacheBlocked), 400u);
}

TEST(Rocket, FetchBubblesFromICacheStress)
{
    // Jump through many functions spread over > 32 KiB of code.
    ProgramBuilder b("icstress");
    const int num_funcs = 96;
    std::vector<Label> funcs;
    Label main = b.newLabel();
    b.j(main);
    for (int f = 0; f < num_funcs; f++) {
        funcs.push_back(b.here());
        for (int i = 0; i < 100; i++)
            b.addi(t0, t0, 1);
        b.ret();
    }
    b.bind(main);
    b.li(s0, 3);
    Label outer = b.newLabel();
    b.bind(outer);
    for (int f = 0; f < num_funcs; f++)
        b.call(funcs[f]);
    b.addi(s0, s0, -1);
    b.bnez(s0, outer);
    b.halt();

    RocketCore core(RocketConfig{}, b.build());
    core.run(20000000);
    EXPECT_TRUE(core.done());
    EXPECT_GT(core.total(EventId::ICacheMiss), 1000u);
    EXPECT_GT(core.total(EventId::FetchBubbles), 0u);
}

TEST(Rocket, SlotAccountingNeverExceedsCycles)
{
    RocketCore core(RocketConfig{}, countdownLoop(300));
    core.run(1000000);
    // Single-issue: issued slots can never exceed cycles.
    EXPECT_LE(core.total(EventId::InstIssued),
              core.total(EventId::Cycles));
    EXPECT_LE(core.total(EventId::FetchBubbles),
              core.total(EventId::Cycles));
}

TEST(Rocket, FenceRaisesFlushAndRetires)
{
    ProgramBuilder b("fence");
    b.li(t0, 10);
    Label loop = b.newLabel();
    b.bind(loop);
    b.fence();
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    RocketCore core(RocketConfig{}, b.build());
    core.run(1000000);
    EXPECT_EQ(core.total(EventId::FenceRetired), 10u);
    // Fences are intended flushes: not machine clears.
    EXPECT_EQ(core.total(EventId::Flush), 0u);
}

TEST(Rocket, SmallerDCacheMoreMisses)
{
    // Working set of 24 KiB: fits in 32 KiB, thrashes 16 KiB.
    auto make = [] {
        ProgramBuilder b("wset");
        Label buf = b.space(24 * 1024);
        b.la(s0, buf);
        b.li(s1, 30); // passes
        Label outer = b.newLabel(), inner = b.newLabel();
        b.bind(outer);
        b.li(t1, 0);
        b.bind(inner);
        b.add(t2, s0, t1);
        b.ld(t3, t2, 0);
        b.addi(t1, t1, 64);
        b.li(t4, 24 * 1024);
        b.blt(t1, t4, inner);
        b.addi(s1, s1, -1);
        b.bnez(s1, outer);
        b.halt();
        return b.build();
    };
    RocketConfig big;
    RocketConfig small;
    small.mem.l1d.sizeBytes = 16 * 1024;
    RocketCore big_core(big, make());
    RocketCore small_core(small, make());
    big_core.run(10000000);
    small_core.run(10000000);
    EXPECT_GT(small_core.total(EventId::DCacheMiss),
              2 * big_core.total(EventId::DCacheMiss));
    EXPECT_GT(small_core.total(EventId::Cycles),
              big_core.total(EventId::Cycles));
}

TEST(Rocket, InBandCsrCounterRead)
{
    // Software reads mcycle via CSR instructions while running.
    ProgramBuilder b("csrread");
    b.csrrs(a1, csr::mcycle, zero);
    b.li(t0, 100);
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.csrrs(a2, csr::mcycle, zero);
    b.sub(a0, a2, a1);
    b.halt();
    RocketConfig cfg;
    RocketCore core(cfg, b.build());
    core.csrFile().setInhibit(false);
    core.run(1000000);
    // Elapsed mcycle between the two reads must be positive and less
    // than the total cycle count.
    EXPECT_GT(core.executor().exitCode(), 100u);
    EXPECT_LT(core.executor().exitCode(), core.cycle());
}

} // namespace
} // namespace icicle
