/**
 * @file
 * TMA model tests: Table II formula behaviour, slot conservation,
 * clamping, and end-to-end agreement with the simulated cores.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "tma/tma.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

using namespace reg;

TmaParams
boomParams(u32 width = 3)
{
    TmaParams p;
    p.coreWidth = width;
    return p;
}

TEST(TmaModel, TopLevelSumsToOne)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 1200;
    c.issuedUops = 1500;
    c.fetchBubbles = 300;
    c.recovering = 80;
    c.branchMispredicts = 20;
    c.machineClears = 2;
    c.fencesRetired = 1;
    c.icacheBlocked = 50;
    c.dcacheBlocked = 200;
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_NEAR(r.retiring + r.badSpeculation + r.frontend + r.backend,
                1.0, 1e-9);
    EXPECT_GT(r.retiring, 0.0);
    EXPECT_GT(r.badSpeculation, 0.0);
    EXPECT_GT(r.frontend, 0.0);
}

TEST(TmaModel, PureRetirementIsAllRetiring)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 3000; // exactly W_C per cycle
    c.issuedUops = 3000;
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_NEAR(r.retiring, 1.0, 1e-9);
    EXPECT_NEAR(r.badSpeculation, 0.0, 1e-9);
    EXPECT_NEAR(r.frontend, 0.0, 1e-9);
    EXPECT_NEAR(r.backend, 0.0, 1e-9);
    EXPECT_NEAR(r.ipc, 3.0, 1e-9);
}

TEST(TmaModel, FetchBubblesDriveFrontend)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 1500;
    c.issuedUops = 1500;
    c.fetchBubbles = 1500; // half the slots
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_NEAR(r.frontend, 0.5, 1e-9);
    EXPECT_NEAR(r.retiring, 0.5, 1e-9);
}

TEST(TmaModel, FlushedUopsDriveBadSpeculation)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 1000;
    c.issuedUops = 2000; // 1000 flushed
    c.branchMispredicts = 50;
    c.recovering = 100;
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_GT(r.badSpeculation, 0.3);
    EXPECT_GT(r.branchMispredicts, 0.0);
}

TEST(TmaModel, FenceFlushesExcludedFromBadSpec)
{
    // Same flushed-uop count, but all flushes are fences: the
    // non-fence flush ratio zeroes the flushed-slot contribution.
    TmaCounters fence_only;
    fence_only.cycles = 1000;
    fence_only.retiredUops = 1000;
    fence_only.issuedUops = 1400;
    fence_only.fencesRetired = 40;

    TmaCounters mispredicts = fence_only;
    mispredicts.fencesRetired = 0;
    mispredicts.branchMispredicts = 40;

    const TmaResult rf = computeTma(fence_only, boomParams());
    const TmaResult rm = computeTma(mispredicts, boomParams());
    EXPECT_LT(rf.badSpeculation, rm.badSpeculation);
}

TEST(TmaModel, MemBoundNeverExceedsBackend)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 2500;
    c.issuedUops = 2500;
    c.dcacheBlocked = 2900; // more blocked slots than backend slots
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_LE(r.memBound, r.backend + 1e-9);
    EXPECT_GE(r.coreBound, 0.0);
}

TEST(TmaModel, FetchLatencyNeverExceedsFrontend)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 2000;
    c.issuedUops = 2000;
    c.fetchBubbles = 100;
    c.icacheBlocked = 900;
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_LE(r.fetchLatency, r.frontend + 1e-9);
    EXPECT_GE(r.pcResteer, 0.0);
}

TEST(TmaModel, ZeroCyclesIsSafe)
{
    const TmaResult r = computeTma(TmaCounters{}, boomParams());
    EXPECT_EQ(r.totalSlots, 0u);
    EXPECT_EQ(r.retiring, 0.0);
}

TEST(TmaModel, RecoverLengthTermOverestimatesBadSpec)
{
    // §IV-A: the M_rl * C_bm term deliberately overestimates.
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 1000;
    c.issuedUops = 1000;
    c.branchMispredicts = 50;
    TmaParams p0 = boomParams();
    p0.recoverLength = 0;
    TmaParams p4 = boomParams();
    const TmaResult r0 = computeTma(c, p0);
    const TmaResult r4 = computeTma(c, p4);
    EXPECT_GT(r4.badSpeculation, r0.badSpeculation);
}

TEST(TmaModel, ReportFormatting)
{
    TmaCounters c;
    c.cycles = 100;
    c.retiredUops = 150;
    c.issuedUops = 180;
    c.fetchBubbles = 30;
    const TmaResult r = computeTma(c, boomParams());
    const std::string report = formatTmaReport(r, "unit-test");
    EXPECT_NE(report.find("Retiring"), std::string::npos);
    EXPECT_NE(report.find("Bad Speculation"), std::string::npos);
    EXPECT_NE(report.find("Mem Bound"), std::string::npos);
    EXPECT_NE(report.find("unit-test"), std::string::npos);
    EXPECT_NE(formatTmaLine(r).find("ipc"), std::string::npos);
}

// ------------------------------- end-to-end sanity on the cores

TEST(TmaEndToEnd, MemoryBoundWorkloadIsBackendBound)
{
    BoomCore core(BoomConfig::large(),
                  workloads::pointerChase(16384, 6000));
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.backend, 0.5) << formatTmaLine(r);
    EXPECT_GT(r.memBound, 0.3) << formatTmaLine(r);
}

TEST(TmaEndToEnd, IlpWorkloadIsRetiringHeavy)
{
    ProgramBuilder b("ilp");
    Label loop = b.newLabel();
    b.li(t0, 30000);
    b.bind(loop);
    b.addi(s0, s0, 1);
    b.addi(s1, s1, 2);
    b.addi(s2, s2, 3);
    b.addi(s3, s3, 4);
    b.addi(s4, s4, 5);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    BoomCore core(BoomConfig::large(), b.build());
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.retiring, 0.5) << formatTmaLine(r);
}

TEST(TmaEndToEnd, RandomBranchesShowBadSpeculation)
{
    ProgramBuilder b("brrand");
    Label loop = b.newLabel(), skip = b.newLabel();
    b.li(s0, 88172645463325252ll);
    b.li(t2, 4000);
    b.bind(loop);
    b.slli(t0, s0, 13);
    b.xor_(s0, s0, t0);
    b.srli(t0, s0, 7);
    b.xor_(s0, s0, t0);
    b.andi(t0, s0, 1);
    b.beqz(t0, skip);
    b.addi(t3, t3, 1);
    b.bind(skip);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    BoomCore core(BoomConfig::large(), b.build());
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.badSpeculation, 0.15) << formatTmaLine(r);
}

TEST(TmaEndToEnd, RocketQsortBadSpecDominatesLostSlots)
{
    // The paper's Rocket highlight: qsort's lost slots are dominated
    // by Bad Speculation.
    RocketCore core(RocketConfig{}, workloads::qsortKernel());
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.badSpeculation, r.frontend) << formatTmaLine(r);
    EXPECT_GT(r.badSpeculation, 0.05) << formatTmaLine(r);
}

TEST(TmaModel, Level3MemBoundSplit)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 1000;
    c.issuedUops = 1000;
    c.dcacheBlocked = 900;
    c.dcacheBlockedDram = 600;
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_NEAR(r.memBoundDram, 600.0 / 3000.0, 1e-9);
    EXPECT_NEAR(r.memBoundL2, 300.0 / 3000.0, 1e-9);
    EXPECT_NEAR(r.memBoundL2 + r.memBoundDram, r.memBound, 1e-9);
}

TEST(TmaModel, Level3DramNeverExceedsMemBound)
{
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 2900;
    c.issuedUops = 2900;
    c.dcacheBlocked = 50;
    c.dcacheBlockedDram = 500; // inconsistent input: must clamp
    const TmaResult r = computeTma(c, boomParams());
    EXPECT_LE(r.memBoundDram, r.memBound + 1e-12);
}

TEST(TmaEndToEnd, PointerChaseIsDramBound)
{
    // Out-of-L2 chasing: the Mem Bound slots are DRAM-level.
    BoomCore core(BoomConfig::large(),
                  workloads::pointerChase(16384, 5000));
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.memBoundDram, r.memBoundL2) << formatTmaLine(r);
    EXPECT_GT(r.memBoundDram, 0.3) << formatTmaLine(r);
}

TEST(TmaEndToEnd, L2ResidentWorkingSetIsL2Bound)
{
    // A working set that thrashes a small L1D but fits the L2: the
    // Mem Bound slots are L2-level, not DRAM-level.
    BoomConfig cfg = BoomConfig::large();
    cfg.mem.l1d.sizeBytes = 8 * 1024;
    BoomCore core(cfg, workloads::spec531DeepsjengR(64));
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.memBound, 0.03) << formatTmaLine(r);
    EXPECT_GT(r.memBoundL2, r.memBoundDram) << formatTmaLine(r);
}

TEST(TmaEndToEnd, RocketRsortNearIdealIpc)
{
    RocketCore core(RocketConfig{}, workloads::rsort());
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    const TmaResult r = analyzeTma(core);
    EXPECT_GT(r.retiring, 0.6) << formatTmaLine(r);
}

TEST(TmaModel, PaperLiteralNfrPinsBothTableIIReadings)
{
    // TMA-005: Table II prints M_nf_r = (C_bm + C_fence)/M_tf, which
    // contradicts its own "non-fence flush ratio" label; the default
    // implements the labelled (C_bm + C_flush)/M_tf semantics. Pin
    // BOTH readings on a fixed counter set so any silent change to
    // either formula (or to which one is the default) fails here.
    //
    // With M_tf = 10 + 5 + 25 = 40:
    //   labelled  M_nf_r = (10 + 5)/40  = 0.375
    //   literal   M_nf_r = (10 + 25)/40 = 0.875
    // and slots = 2000, flushed = 300, rec_slots = 120, M_rl*bm*W = 80:
    //   labelled  badspec = (300*0.375 + 120 + 80)/2000 = 0.15625
    //   literal   badspec = (300*0.875 + 120 + 80)/2000 = 0.23125
    // Both leave the four classes summing to one pre-normalization,
    // so these are exact closed-form values, not normalized residues.
    TmaCounters c;
    c.cycles = 1000;
    c.retiredUops = 900;
    c.issuedUops = 1200;
    c.fetchBubbles = 300;
    c.recovering = 60;
    c.branchMispredicts = 10;
    c.machineClears = 5;
    c.fencesRetired = 25;

    TmaParams labelled = boomParams(2);
    ASSERT_FALSE(labelled.paperLiteralNfr) << "labelled must be default";
    TmaParams literal = boomParams(2);
    literal.paperLiteralNfr = true;

    const TmaResult rl = computeTma(c, labelled);
    const TmaResult rp = computeTma(c, literal);
    EXPECT_NEAR(rl.badSpeculation, 0.15625, 1e-12);
    EXPECT_NEAR(rp.badSpeculation, 0.23125, 1e-12);
    // Only Bad Speculation (and, by conservation, Backend) may move.
    EXPECT_NEAR(rl.retiring, rp.retiring, 1e-12);
    EXPECT_NEAR(rl.frontend, rp.frontend, 1e-12);
    EXPECT_NEAR(rl.backend - rp.backend,
                rp.badSpeculation - rl.badSpeculation, 1e-12);
    EXPECT_NEAR(rp.retiring + rp.badSpeculation + rp.frontend +
                    rp.backend,
                1.0, 1e-12);
}

} // namespace
} // namespace icicle
