/**
 * @file
 * BOOM core timing-model tests: OoO pipeline invariants across all
 * five Table IV sizes, per-lane event behaviour, speculation and
 * machine-clear modelling, and MSHR-driven memory-boundness.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "isa/builder.hh"

namespace icicle
{
namespace
{

using namespace reg;

Program
countdownLoop(u64 iterations)
{
    ProgramBuilder b("countdown");
    Label loop = b.newLabel();
    b.li(t0, static_cast<i64>(iterations));
    b.bind(loop);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

Program
ilpLoop(u64 iterations)
{
    // Six independent chains: a wide machine should exploit the ILP.
    ProgramBuilder b("ilp");
    Label loop = b.newLabel();
    b.li(t0, static_cast<i64>(iterations));
    b.bind(loop);
    b.addi(s0, s0, 1);
    b.addi(s1, s1, 2);
    b.addi(s2, s2, 3);
    b.addi(s3, s3, 4);
    b.addi(s4, s4, 5);
    b.addi(s5, s5, 6);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

Program
pointerChase(u64 nodes, u64 hops)
{
    // A shuffled linked list larger than L2: every hop is a DRAM miss.
    ProgramBuilder b("chase");
    Rng rng(42);
    std::vector<u64> perm(nodes);
    for (u64 i = 0; i < nodes; i++)
        perm[i] = i;
    for (u64 i = nodes - 1; i > 0; i--)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    std::vector<u64> next(nodes);
    const u64 stride = 64; // one node per cache block
    for (u64 i = 0; i < nodes; i++)
        next[perm[i]] = perm[(i + 1) % nodes] * stride;
    std::vector<u64> mem_image(nodes * stride / 8, 0);
    for (u64 i = 0; i < nodes; i++)
        mem_image[i * stride / 8] = next[i];
    Label list = b.dwords(mem_image);

    b.la(t0, list);
    b.mv(t1, t0);
    b.li(t2, static_cast<i64>(hops));
    Label loop = b.newLabel();
    b.bind(loop);
    b.ld(t3, t1, 0);  // next offset
    b.add(t1, t0, t3);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

class BoomAllSizes : public ::testing::TestWithParam<int>
{
  protected:
    BoomConfig config() const
    { return BoomConfig::allSizes()[GetParam()]; }
};

TEST_P(BoomAllSizes, RunsToCompletion)
{
    BoomCore core(config(), countdownLoop(300));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 0u);
}

TEST_P(BoomAllSizes, RetiredMatchesExecutor)
{
    BoomCore core(config(), countdownLoop(300));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.total(EventId::InstRetired),
              core.executor().instsRetired());
    EXPECT_EQ(core.total(EventId::UopsRetired),
              core.executor().instsRetired());
}

TEST_P(BoomAllSizes, IssuedAtLeastRetired)
{
    BoomCore core(config(), countdownLoop(500));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_GE(core.total(EventId::UopsIssued),
              core.total(EventId::UopsRetired));
}

TEST_P(BoomAllSizes, RetirePerCycleBoundedByWidth)
{
    BoomCore core(config(), ilpLoop(500));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_LE(core.total(EventId::UopsRetired),
              core.total(EventId::Cycles) * config().coreWidth);
}

TEST_P(BoomAllSizes, IssueLanesBoundedByWidth)
{
    const BoomConfig cfg = config();
    BoomCore core(cfg, ilpLoop(500));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    for (u32 lane = cfg.totalIssueWidth(); lane < kMaxSources; lane++)
        EXPECT_EQ(core.laneTotal(EventId::UopsIssued, lane), 0u);
}

TEST_P(BoomAllSizes, SlotConservation)
{
    // Fetch bubbles + retire slots never exceed total slots.
    const BoomConfig cfg = config();
    BoomCore core(cfg, countdownLoop(400));
    core.run(1000000);
    ASSERT_TRUE(core.done());
    const u64 slots = core.total(EventId::Cycles) * cfg.coreWidth;
    EXPECT_LE(core.total(EventId::FetchBubbles), slots);
    EXPECT_LE(core.total(EventId::UopsRetired), slots);
    EXPECT_LE(core.total(EventId::DCacheBlocked), slots);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, BoomAllSizes,
                         ::testing::Range(0, 5),
                         [](const auto &info) {
                             return BoomConfig::allSizes()[info.param]
                                 .name;
                         });

TEST(Boom, SuperscalarBeatsSingleIssueOnIlp)
{
    BoomCore large(BoomConfig::large(), ilpLoop(2000));
    BoomCore small(BoomConfig::small(), ilpLoop(2000));
    large.run(10000000);
    small.run(10000000);
    ASSERT_TRUE(large.done());
    ASSERT_TRUE(small.done());
    // The 3-wide Large core must finish the ILP loop much faster.
    EXPECT_LT(large.cycle() * 3, small.cycle() * 2);
}

TEST(Boom, IpcAboveOneOnIlpCode)
{
    BoomCore core(BoomConfig::large(), ilpLoop(4000));
    core.run(10000000);
    ASSERT_TRUE(core.done());
    const double ipc =
        static_cast<double>(core.total(EventId::InstRetired)) /
        static_cast<double>(core.cycle());
    EXPECT_GT(ipc, 1.3) << "ipc=" << ipc;
}

TEST(Boom, PointerChaseIsMemoryBound)
{
    BoomCore core(BoomConfig::large(), pointerChase(16384, 4000));
    core.run(20000000);
    ASSERT_TRUE(core.done());
    // Most cycles should see a D$-blocked lane-0 event.
    const double blocked_frac =
        static_cast<double>(core.laneTotal(EventId::DCacheBlocked, 0)) /
        static_cast<double>(core.cycle());
    EXPECT_GT(blocked_frac, 0.4) << blocked_frac;
    EXPECT_GT(core.total(EventId::DCacheMiss), 3500u);
}

TEST(Boom, RandomBranchesCauseBadSpeculation)
{
    ProgramBuilder b("brrandom");
    Label loop = b.newLabel();
    Label skip = b.newLabel();
    b.li(s0, 987654321);
    b.li(s1, 6364136223846793005ll);
    b.li(s2, 1442695040888963407ll);
    b.li(t2, 3000);
    b.bind(loop);
    b.mul(s0, s0, s1);
    b.add(s0, s0, s2);
    b.srli(t0, s0, 32);
    b.andi(t0, t0, 1);
    b.beqz(t0, skip);
    b.addi(t3, t3, 1);
    b.bind(skip);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    BoomCore core(BoomConfig::large(), b.build());
    core.run(20000000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.branchMispredicts(), 600u);
    EXPECT_GT(core.total(EventId::Recovering), 600u);
    // Wrong-path uops issued then flushed: issued must clearly exceed
    // retired.
    EXPECT_GT(core.total(EventId::UopsIssued),
              core.total(EventId::UopsRetired) + 1000);
}

TEST(Boom, PredictableBranchesLearned)
{
    BoomCore core(BoomConfig::large(), countdownLoop(3000));
    core.run(10000000);
    ASSERT_TRUE(core.done());
    EXPECT_LT(core.branchMispredicts(), 40u);
}

TEST(Boom, FencesRetireAndRedirect)
{
    ProgramBuilder b("fence");
    b.li(t0, 8);
    Label loop = b.newLabel();
    b.bind(loop);
    b.fence();
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    BoomCore core(BoomConfig::large(), b.build());
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.total(EventId::FenceRetired), 8u);
    EXPECT_GT(core.total(EventId::Recovering), 8u);
}

TEST(Boom, StoreLoadViolationTriggersMachineClear)
{
    // Store then immediately load the same address, with the store's
    // data arriving late through a divide: the load issues first and
    // must be squashed at least once before the store-set predictor
    // learns the dependence.
    ProgramBuilder b("stl");
    Label buf = b.dword(0);
    b.la(s0, buf);
    b.li(s1, 100);
    b.li(s2, 7);
    Label loop = b.newLabel();
    b.bind(loop);
    b.div(t0, s1, s2);  // slow producer
    b.sd(t0, s0, 0);    // store waits on divide
    b.ld(t1, s0, 0);    // load would speculate ahead
    b.add(t2, t2, t1);
    b.addi(s1, s1, -1);
    b.bnez(s1, loop);
    b.halt();
    BoomCore core(BoomConfig::large(), b.build());
    core.run(1000000);
    ASSERT_TRUE(core.done());
    EXPECT_GE(core.machineClears(), 1u);
    EXPECT_GE(core.total(EventId::Flush), 1u);
    // The predictor must stop the pathology from repeating forever.
    EXPECT_LT(core.machineClears(), 50u);
}

TEST(Boom, FetchBubbleLanesAreMonotonic)
{
    // Lane i fires when at most i uops were supplied, so higher lanes
    // fire at least as often (the Table V per-lane structure).
    BoomCore core(BoomConfig::large(), pointerChase(512, 2000));
    core.run(20000000);
    ASSERT_TRUE(core.done());
    const u32 width = core.config().coreWidth;
    for (u32 lane = 1; lane < width; lane++) {
        EXPECT_GE(core.laneTotal(EventId::FetchBubbles, lane),
                  core.laneTotal(EventId::FetchBubbles, lane - 1));
    }
}

TEST(Boom, FpIssueLaneSilentOnIntegerCode)
{
    // RV64IM workloads never touch the FP queue: its lanes stay at
    // zero (the Table V "lane 4 = 0.00" observation).
    const BoomConfig cfg = BoomConfig::large();
    BoomCore core(cfg, ilpLoop(1000));
    core.run(10000000);
    ASSERT_TRUE(core.done());
    const u32 fp_lane_base = cfg.issueWidth[0] + cfg.issueWidth[1];
    for (u32 lane = fp_lane_base; lane < cfg.totalIssueWidth(); lane++)
        EXPECT_EQ(core.laneTotal(EventId::UopsIssued, lane), 0u);
}

TEST(Boom, MshrLimitThrottlesMlp)
{
    // Independent misses: more MSHRs -> more memory-level parallelism.
    auto make = [] {
        ProgramBuilder b("mlp");
        Label buf = b.space(512 * 1024);
        b.la(s0, buf);
        b.li(s1, 4000);
        b.li(s2, 0);
        Label loop = b.newLabel();
        b.li(s3, 4096);
        b.bind(loop);
        b.add(t0, s0, s2);
        b.ld(t1, t0, 0);
        b.add(t0, t0, s3);
        b.ld(t2, t0, 0);
        b.add(t0, t0, s3);
        b.ld(t3, t0, 0);
        b.add(t0, t0, s3);
        b.ld(t4, t0, 0);
        b.addi(s2, s2, 64);
        b.andi(s2, s2, 2047);
        b.addi(s1, s1, -1);
        b.bnez(s1, loop);
        b.halt();
        return b.build();
    };
    BoomConfig few = BoomConfig::large();
    few.numMshrs = 1;
    BoomConfig many = BoomConfig::large();
    many.numMshrs = 8;
    BoomCore few_core(few, make());
    BoomCore many_core(many, make());
    few_core.run(50000000);
    many_core.run(50000000);
    ASSERT_TRUE(few_core.done());
    ASSERT_TRUE(many_core.done());
    EXPECT_LT(many_core.cycle(), few_core.cycle());
}

TEST(Boom, InBandCsrHarnessReadsCounters)
{
    // Software programs a counter for uops-retired via CSRs, runs a
    // loop, and reads the delta back (the §IV-D four-step protocol).
    ProgramBuilder b("csr");
    const u32 event_csr = csr::mhpmevent3;
    const u32 counter_csr = csr::mhpmcounter3;
    const u64 selector = csr::selector(
        EventSetId::Tma, 1ull << 3 /* set below via program() */);
    (void)selector;
    b.csrrwi(zero, csr::mcountinhibit, 0); // (4) clear inhibit
    b.csrrs(a1, counter_csr, zero);
    b.li(t0, 50);
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.csrrs(a2, counter_csr, zero);
    b.sub(a0, a2, a1);
    b.halt();

    BoomCore core(BoomConfig::large(), b.build());
    core.csrFile().program(0, {EventId::UopsRetired});
    core.csrFile().setInhibit(false);
    core.run(1000000);
    ASSERT_TRUE(core.done());
    // ~100 uops retire between the two reads (50 iterations x 2).
    EXPECT_GT(core.executor().exitCode(), 80u);
    EXPECT_LT(core.executor().exitCode(), 200u);
    (void)event_csr;
}

TEST(Boom, DrainsAfterHalt)
{
    BoomCore core(BoomConfig::mega(), countdownLoop(10));
    const u64 cycles = core.run(100000);
    ASSERT_TRUE(core.done());
    EXPECT_LT(cycles, 100000u);
    EXPECT_EQ(core.total(EventId::Exception), 1u);
}

} // namespace
} // namespace icicle
