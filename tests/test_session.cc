/**
 * @file
 * Session / umbrella-API tests: the factories, counter gathering,
 * parameter plumbing, and configuration variations a downstream user
 * exercises first.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "isa/builder.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

TEST(Session, FactoriesProduceWorkingCores)
{
    const Program program = buildWorkload("towers");
    auto rocket = makeRocket(RocketConfig{}, program);
    auto boom = makeBoom(BoomConfig::medium(), program);
    EXPECT_EQ(rocket->kind(), CoreKind::Rocket);
    EXPECT_EQ(boom->kind(), CoreKind::Boom);
    EXPECT_STREQ(rocket->name(), "Rocket");
    EXPECT_STREQ(boom->name(), "MediumBoomV3");
    EXPECT_EQ(rocket->coreWidth(), 1u);
    EXPECT_EQ(boom->coreWidth(), 2u);
    EXPECT_EQ(boom->issueWidth(), 4u);

    rocket->run(10'000'000);
    boom->run(10'000'000);
    EXPECT_TRUE(rocket->done());
    EXPECT_TRUE(boom->done());
    EXPECT_EQ(rocket->executor().exitCode(), 0u);
    EXPECT_EQ(boom->executor().exitCode(), 0u);
}

TEST(Session, GatheredCountersMatchCoreTotals)
{
    auto core = makeBoom(BoomConfig::large(), buildWorkload("qsort"));
    core->run(50'000'000);
    ASSERT_TRUE(core->done());
    const TmaCounters c = gatherTmaCounters(*core);
    EXPECT_EQ(c.cycles, core->total(EventId::Cycles));
    EXPECT_EQ(c.retiredUops, core->total(EventId::UopsRetired));
    EXPECT_EQ(c.issuedUops, core->total(EventId::UopsIssued));
    EXPECT_EQ(c.fetchBubbles, core->total(EventId::FetchBubbles));
    EXPECT_EQ(c.dcacheBlockedDram,
              core->total(EventId::DCacheBlockedDram));
}

TEST(Session, ParamsFollowCoreWidth)
{
    auto small = makeBoom(BoomConfig::small(), buildWorkload("towers"));
    auto giga = makeBoom(BoomConfig::giga(), buildWorkload("towers"));
    EXPECT_EQ(tmaParamsFor(*small).coreWidth, 1u);
    EXPECT_EQ(tmaParamsFor(*giga).coreWidth, 5u);
    EXPECT_EQ(tmaParamsFor(*small).recoverLength, 4u);
}

TEST(Session, AnalyzeTmaIsAPartition)
{
    auto core =
        makeRocket(RocketConfig{}, buildWorkload("coremark"));
    core->run(50'000'000);
    ASSERT_TRUE(core->done());
    const TmaResult r = analyzeTma(*core);
    EXPECT_NEAR(r.retiring + r.badSpeculation + r.frontend + r.backend,
                1.0, 1e-9);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Session, TableIVSizesAreOrderedByCapability)
{
    // Wider machines must not be slower on an ILP-rich workload.
    u64 prev_cycles = ~0ull;
    for (const BoomConfig &cfg : BoomConfig::allSizes()) {
        auto core = makeBoom(cfg, buildWorkload("mm"));
        core->run(80'000'000);
        ASSERT_TRUE(core->done()) << cfg.name;
        // Allow small non-monotonicity (predictor warmup noise).
        EXPECT_LT(core->cycle(), prev_cycles * 11 / 10) << cfg.name;
        prev_cycles = core->cycle();
    }
}

TEST(Session, RocketConfigKnobsApply)
{
    RocketConfig tiny;
    tiny.bhtEntries = 64;
    tiny.btbEntries = 4;
    tiny.ibufEntries = 2;
    tiny.mem.l1d.sizeBytes = 4 * 1024;
    auto constrained = makeRocket(tiny, buildWorkload("qsort"));
    auto standard = makeRocket(RocketConfig{}, buildWorkload("qsort"));
    constrained->run(80'000'000);
    standard->run(80'000'000);
    ASSERT_TRUE(constrained->done() && standard->done());
    EXPECT_EQ(constrained->executor().exitCode(), 0u);
    // The degraded frontend/caches must cost cycles.
    EXPECT_GT(constrained->cycle(), standard->cycle());
}

TEST(Session, DivLatencyKnobApplies)
{
    RocketConfig slow;
    slow.divLatency = 64;
    RocketConfig fast;
    fast.divLatency = 8;
    Program program = [] {
        ProgramBuilder b("divloop");
        using namespace reg;
        Label loop = b.newLabel();
        b.li(t0, 300);
        b.li(t1, 97);
        b.bind(loop);
        b.div(t2, t1, t0);
        b.addi(t0, t0, -1);
        b.bnez(t0, loop);
        b.li(a0, 0);
        b.halt();
        return b.build();
    }();
    auto slow_core = makeRocket(slow, program);
    auto fast_core = makeRocket(fast, program);
    slow_core->run(10'000'000);
    fast_core->run(10'000'000);
    ASSERT_TRUE(slow_core->done() && fast_core->done());
    EXPECT_GT(slow_core->cycle(), fast_core->cycle() * 2);
}

} // namespace
} // namespace icicle
