/**
 * @file
 * Branch-predictor tests: BHT saturation, TAGE history learning
 * (patterns a 2-bit counter cannot track), BTB replacement, and the
 * return-address stack.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"
#include "common/logging.hh"

namespace icicle
{
namespace
{

TEST(Bht, LearnsBiasedBranch)
{
    Bht bht(512);
    const Addr pc = 0x1000;
    for (int i = 0; i < 10; i++)
        bht.update(pc, true);
    EXPECT_TRUE(bht.predictTaken(pc));
    for (int i = 0; i < 10; i++)
        bht.update(pc, false);
    EXPECT_FALSE(bht.predictTaken(pc));
}

TEST(Bht, DithersOnAlternation)
{
    // The brmiss case-study mechanism: strict alternation defeats a
    // 2-bit counter.
    // Phase matters: starting taken from the weakly-not-taken reset
    // state locks the counter into the 1<->2 dither.
    Bht bht(512);
    const Addr pc = 0x2000;
    u32 mispredicts = 0;
    bool outcome = true;
    for (int i = 0; i < 200; i++) {
        if (bht.predictTaken(pc) != outcome)
            mispredicts++;
        bht.update(pc, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(mispredicts, 150u);
}

TEST(Bht, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(Bht bht(500), FatalError);
}

TEST(Tage, LearnsAlternationThroughHistory)
{
    Tage tage;
    const Addr pc = 0x3000;
    u32 late_mispredicts = 0;
    bool outcome = false;
    for (int i = 0; i < 600; i++) {
        const bool prediction = tage.predictTaken(pc);
        if (i >= 300 && prediction != outcome)
            late_mispredicts++;
        tage.update(pc, outcome);
        outcome = !outcome;
    }
    // After warmup, TAGE should track the alternation well.
    EXPECT_LT(late_mispredicts, 30u);
}

TEST(Tage, IncrementalFoldsMatchFromScratchFold)
{
    // The O(1) folded-history registers must stay bit-identical to
    // refolding the full history, including once the history exceeds
    // every table's length and eviction kicks in (64+ updates).
    Tage tage;
    u64 lcg = 0x1234'5678'9abc'def0ull;
    for (int i = 0; i < 500; i++) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const Addr pc = 0x4000 + ((lcg >> 33) & 0xff) * 4;
        const bool taken = (lcg >> 62) & 1;
        tage.predictTaken(pc);
        tage.update(pc, taken);
        ASSERT_TRUE(tage.foldsConsistent()) << "diverged at " << i;
    }
}

TEST(Tage, LearnsShortPeriodicPattern)
{
    Tage tage;
    const Addr pc = 0x4000;
    const bool pattern[5] = {true, true, false, true, false};
    u32 late_mispredicts = 0;
    for (int i = 0; i < 1000; i++) {
        const bool outcome = pattern[i % 5];
        if (i >= 600 && tage.predictTaken(pc) != outcome)
            late_mispredicts++;
        tage.update(pc, outcome);
    }
    EXPECT_LT(late_mispredicts, 40u);
}

TEST(Tage, BiasedBranchesNearPerfect)
{
    Tage tage;
    u32 mispredicts = 0;
    for (int i = 0; i < 500; i++) {
        const Addr pc = 0x5000 + (i % 8) * 4;
        if (i >= 100 && !tage.predictTaken(pc))
            mispredicts++;
        tage.update(pc, true);
    }
    EXPECT_LT(mispredicts, 10u);
}

TEST(Btb, LookupAfterUpdate)
{
    Btb btb(28);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    const auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
}

TEST(Btb, CapacityEvictsLru)
{
    Btb btb(4);
    for (Addr pc = 0; pc < 5; pc++)
        btb.update(0x1000 + pc * 4, 0x2000 + pc * 4);
    // The first entry (LRU) must have been evicted.
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_TRUE(btb.lookup(0x1010).has_value());
}

TEST(Btb, UpdateRefreshesTarget)
{
    Btb btb(4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Ras, PushPopOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop().value(), 0x200u);
    EXPECT_EQ(ras.pop().value(), 0x100u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, OverflowWrapsAround)
{
    Ras ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites 0x1
    EXPECT_EQ(ras.pop().value(), 0x3u);
    EXPECT_EQ(ras.pop().value(), 0x2u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Predictor, MispredictBookkeeping)
{
    Bht bht(512);
    bht.recordOutcome(true, false);
    bht.recordOutcome(true, true);
    EXPECT_EQ(bht.lookups(), 2u);
    EXPECT_EQ(bht.mispredicts(), 1u);
}

} // namespace
} // namespace icicle
