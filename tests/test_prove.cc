/**
 * @file
 * Model-checker and trace-verifier tests.
 *
 * Three layers: (1) the shipped matrix proves clean — every counter
 * architecture and geometry satisfies PROVE-C1/C2/C3; (2) the checker
 * can actually fail — an underwidth Distributed geometry (4 sources,
 * localWidth 1, wrap 2 < sources) must produce PROVE-C1 findings,
 * guarding against a vacuous prover; (3) the PROVE-T trace rules hold
 * on real captures and the live counter/trace/ground-truth cross-check
 * agrees exactly. When the build carries -DICICLE_MUTANTS=ON, the
 * mutant suite additionally requires every seeded bug caught by its
 * registered rule.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "core/session.hh"
#include "prove/prove.hh"
#include "prove/trace_check.hh"
#include "store/store.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

bool
hasRule(const LintReport &report, const std::string &rule)
{
    for (const Diagnostic &diag : report.diagnostics()) {
        if (diag.rule == rule && diag.severity == Severity::Error)
            return true;
    }
    return false;
}

/** Temp file that unlinks itself. */
class TempPath
{
  public:
    explicit TempPath(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempPath() { std::remove(path.c_str()); }
    const std::string path;
};

TEST(ProveArch, StatelessArchitecturesAreLossless)
{
    for (CounterArch arch :
         {CounterArch::Scalar, CounterArch::AddWires}) {
        for (u32 sources : {1u, 4u, 9u}) {
            ArchProveOptions options;
            options.sources = sources;
            LintReport report;
            const ProveStats stats =
                proveCounterLossless(arch, options, report);
            EXPECT_EQ(report.errorCount(), 0u)
                << counterArchName(arch) << " s" << sources << "\n"
                << report.toJson();
            EXPECT_TRUE(stats.closed);
            EXPECT_EQ(stats.states, 1u)
                << "stateless architectures have one canonical state";
        }
    }
}

TEST(ProveArch, DistributedShippedGeometriesAreLossless)
{
    // Paper-width geometry (localWidth = ceil(log2(sources)), wrap >=
    // sources): the drain always wins the race against the next wrap,
    // so the full reachable space must verify C1 and C2.
    for (u32 sources : {1u, 2u, 3u, 4u, 5u, 8u, 9u}) {
        ArchProveOptions options;
        options.sources = sources;
        options.localWidth = 0; // paper width
        LintReport report;
        const ProveStats stats = proveCounterLossless(
            CounterArch::Distributed, options, report);
        EXPECT_EQ(report.errorCount(), 0u)
            << "s" << sources << "\n" << report.toJson();
        EXPECT_TRUE(stats.closed) << "s" << sources;
        EXPECT_GT(stats.transitions, 0u);
    }
}

TEST(ProveArch, UnderwidthDistributedIsCaught)
{
    // Self-test that the prover is not vacuous: 4 sources at
    // localWidth 1 (wrap 2 < sources) CAN lose events — a local
    // counter can wrap again while its first overflow latch is still
    // waiting for the arbiter. The enumeration must find a concrete
    // PROVE-C1 witness.
    ArchProveOptions options;
    options.sources = 4;
    options.localWidth = 1;
    LintReport report;
    proveCounterLossless(CounterArch::Distributed, options, report);
    EXPECT_GT(report.errorCount(), 0u)
        << "underwidth geometry verified clean: the checker is "
           "vacuous";
    EXPECT_TRUE(hasRule(report, "PROVE-C1")) << report.toJson();
}

TEST(ProveArch, CsrCoherenceHoldsForAllArchitectures)
{
    for (CounterArch arch :
         {CounterArch::Scalar, CounterArch::AddWires,
          CounterArch::Distributed}) {
        CsrProveOptions options;
        options.sources = 4;
        options.horizon = 12;
        LintReport report;
        const ProveStats stats =
            proveCsrCoherence(arch, options, report);
        EXPECT_EQ(report.errorCount(), 0u)
            << counterArchName(arch) << "\n" << report.toJson();
        EXPECT_TRUE(stats.closed) << counterArchName(arch);
    }
}

TEST(ProveArch, ShippedMatrixProvesClean)
{
    // The full CI gate, in-process: every architecture x geometry and
    // both CSR cores, all clean and all closed. The horizon must be
    // >= 30: the widest shipped geometry (9 sources, wrap 16) only
    // closes its reachable set at depth 29. This test doubles as the
    // timing-budget guard — the ctest timeout (far below 60s) fails
    // it if enumeration regresses superlinearly.
    const std::vector<ProveRun> runs = proveArchMatrix(32);
    ASSERT_GE(runs.size(), 18u);
    for (const ProveRun &run : runs) {
        EXPECT_EQ(run.report.errorCount(), 0u)
            << run.name << "\n" << run.report.toJson();
        EXPECT_TRUE(run.stats.closed) << run.name;
        EXPECT_GT(run.stats.transitions, 0u) << run.name;
    }
}

TEST(ProveTrace, CapturedBoomStoreSatisfiesAllRules)
{
    TempPath store("prove_boom.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "boom-small", CounterArch::AddWires,
        buildWorkload("dhrystone"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 100000,
                       store.path, 4096);

    StoreReader reader(store.path);
    LintReport report;
    const TraceCheckStats stats =
        checkStoreInvariants(reader, report);
    EXPECT_EQ(report.errorCount(), 0u) << report.toJson();
    EXPECT_TRUE(stats.boomShaped);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_NE(stats.rulesRun.find("T2"), std::string::npos);
    EXPECT_NE(stats.rulesRun.find("T5"), std::string::npos);
    EXPECT_NE(stats.rulesRun.find("T6"), std::string::npos);
}

TEST(ProveTrace, CapturedRocketStoreSkipsBoomOnlyRules)
{
    TempPath store("prove_rocket.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 100000,
                       store.path, 4096);

    StoreReader reader(store.path);
    LintReport report;
    const TraceCheckStats stats =
        checkStoreInvariants(reader, report);
    EXPECT_EQ(report.errorCount(), 0u) << report.toJson();
    EXPECT_FALSE(stats.boomShaped);
    // Rocket resolves mispredicts after the bubble sample point, so
    // the exclusivity rule must not run on its bundles.
    EXPECT_EQ(stats.rulesRun.find("T2"), std::string::npos)
        << stats.rulesRun;
}

TEST(ProveTrace, EmptyStoreIsAFindingNotACrash)
{
    // A header-only store must produce a PROVE-T1 finding (and the
    // query CLI exits 2 on it — see test_cli), never divide by zero
    // or report vacuous success.
    TempPath empty("prove_empty.icst");
    std::unique_ptr<Core> idle = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*idle, TraceSpec::tmaBundle(*idle), 0,
                       empty.path, 4096);
    StoreReader reader(empty.path);
    LintReport report;
    const TraceCheckStats stats = checkStoreInvariants(reader, report);
    EXPECT_GT(report.errorCount(), 0u);
    EXPECT_TRUE(hasRule(report, "PROVE-T1"));
    EXPECT_EQ(stats.cycles, 0u);
}

TEST(ProveTrace, LiveCrossCheckAgreesOnEveryArchitecture)
{
    for (CounterArch arch :
         {CounterArch::Scalar, CounterArch::AddWires,
          CounterArch::Distributed}) {
        LiveCheckOptions options;
        options.coreName = "boom-small";
        options.arch = arch;
        options.workload = "dhrystone";
        options.maxCycles = 50000;
        LintReport report;
        const LiveCheckStats stats =
            proveLiveCrossCheck(options, report);
        EXPECT_EQ(report.errorCount(), 0u)
            << counterArchName(arch) << "\n" << report.toJson();
        EXPECT_EQ(stats.eventsChecked, 4u);
        EXPECT_GT(stats.cycles, 0u);
    }
}

TEST(ProveTrace, LiveCrossCheckAgreesOnRocket)
{
    LiveCheckOptions options;
    options.coreName = "rocket";
    options.arch = CounterArch::Distributed;
    options.workload = "vvadd";
    options.maxCycles = 50000;
    LintReport report;
    const LiveCheckStats stats = proveLiveCrossCheck(options, report);
    EXPECT_EQ(report.errorCount(), 0u) << report.toJson();
    EXPECT_EQ(stats.eventsChecked, 4u);
}

#ifdef ICICLE_MUTANTS

TEST(ProveMutants, EverySeededBugIsCaughtByItsRegisteredRule)
{
    ASSERT_TRUE(mutantsCompiledIn());
    const std::vector<MutantResult> results = runMutantSuite(16);
    ASSERT_GE(results.size(), 8u)
        << "the ISSUE requires a registry of >= 8 seeded bugs";
    for (const MutantResult &result : results) {
        EXPECT_TRUE(result.caught)
            << result.info.name << " escaped the checker";
        EXPECT_TRUE(result.expectedRuleHit)
            << result.info.name << " was not flagged by "
            << result.info.expectedRule << "; witness: "
            << result.firstFinding;
    }
}

TEST(ProveMutants, InactiveMutantsLeaveTheMatrixClean)
{
    // Compiling the mutants in must not change behaviour while none
    // is active: the clean matrix still proves.
    ASSERT_EQ(activeMutant(), CounterMutant::None);
    const std::vector<ProveRun> runs = proveArchMatrix(16);
    for (const ProveRun &run : runs)
        EXPECT_EQ(run.report.errorCount(), 0u) << run.name;
}

#else

TEST(ProveMutants, ActivationRequiresMutantBuild)
{
    EXPECT_FALSE(mutantsCompiledIn());
    EXPECT_THROW(setActiveMutant(CounterMutant::WrapOffByOne),
                 FatalError);
}

#endif

} // namespace
} // namespace icicle
