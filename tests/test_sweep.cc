/**
 * @file
 * Sweep-engine tests: grid expansion order, deterministic aggregation
 * across worker counts (the byte-identical guarantee), retry and
 * timeout handling, custom-job campaigns, and the named-config /
 * axis-value helpers.
 */

#include <atomic>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "store/store.hh"
#include "sweep/journal.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

using namespace reg;

/** A tiny deterministic loop that halts after `iterations`. */
Program
countLoop(u64 iterations)
{
    ProgramBuilder b("count");
    Label loop = b.newLabel();
    b.li(t2, static_cast<i64>(iterations));
    b.bind(loop);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    return b.build();
}

/** A program that never halts (timeout fodder). */
Program
endlessLoop()
{
    ProgramBuilder b("endless");
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(t0, t0, 1);
    b.j(loop);
    return b.build();
}

GridSpec
smallGrid()
{
    GridSpec grid;
    grid.cores = {"rocket", "boom-small"};
    grid.workloads = {"vvadd", "towers"};
    grid.counterArchs = {CounterArch::Scalar, CounterArch::AddWires};
    grid.maxCycles = 400'000; // vvadd on Rocket needs ~210k
    return grid;
}

TEST(GridSpec, ExpandsRowMajor)
{
    const GridSpec grid = smallGrid();
    const std::vector<SweepPoint> points = grid.expand();
    ASSERT_EQ(points.size(), 8u);
    for (const SweepPoint &point : points)
        EXPECT_EQ(point.maxCycles, 400'000u);
    // cores outermost, archs innermost.
    EXPECT_EQ(points[0].core, "rocket");
    EXPECT_EQ(points[0].workload, "vvadd");
    EXPECT_EQ(points[0].counterArch, CounterArch::Scalar);
    EXPECT_EQ(points[1].counterArch, CounterArch::AddWires);
    EXPECT_EQ(points[2].workload, "towers");
    EXPECT_EQ(points[4].core, "boom-small");
    EXPECT_EQ(points[7].core, "boom-small");
    EXPECT_EQ(points[7].workload, "towers");
    EXPECT_EQ(points[7].counterArch, CounterArch::AddWires);
    for (const SweepPoint &point : points)
        EXPECT_FALSE(point.withTrace);
}

TEST(SweepEngine, ResultsArriveInGridOrder)
{
    SweepOptions options;
    options.workers = 4;
    const std::vector<SweepResult> results =
        runSweep(smallGrid(), options);
    ASSERT_EQ(results.size(), 8u);
    for (u64 i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].status, SweepStatus::Ok);
        EXPECT_TRUE(results[i].finished) << results[i].label;
        EXPECT_GT(results[i].cycles, 0u);
        EXPECT_GT(results[i].ipc, 0.0);
        EXPECT_EQ(results[i].attempts, 1u);
    }
    // Labels follow the row-major expansion.
    EXPECT_EQ(results[0].label, "rocket/vvadd/scalar");
    EXPECT_EQ(results[7].label, "boom-small/towers/add-wires");
}

// The acceptance property: an 8-point grid with 4 workers produces
// byte-identical aggregated output to the same grid with 1 worker.
TEST(SweepEngine, ParallelOutputMatchesSerialByteForByte)
{
    const GridSpec grid = smallGrid();
    SweepOptions serial;
    serial.workers = 1;
    SweepOptions parallel;
    parallel.workers = 4;
    const std::vector<SweepResult> a = runSweep(grid, serial);
    const std::vector<SweepResult> b = runSweep(grid, parallel);
    EXPECT_EQ(formatSweepTable(a), formatSweepTable(b));
    EXPECT_EQ(formatSweepCsv(a), formatSweepCsv(b));
    EXPECT_EQ(formatSweepJson(a), formatSweepJson(b));
    // And the measurements themselves are identical.
    ASSERT_EQ(a.size(), b.size());
    for (u64 i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].counters.retiredUops,
                  b[i].counters.retiredUops);
        EXPECT_DOUBLE_EQ(a[i].tma.retiring, b[i].tma.retiring);
    }
}

TEST(SweepEngine, MoreWorkersThanJobs)
{
    GridSpec grid;
    grid.cores = {"rocket"};
    grid.workloads = {"vvadd"};
    grid.maxCycles = 100'000;
    SweepOptions options;
    options.workers = 16;
    const std::vector<SweepResult> results = runSweep(grid, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Ok);
}

TEST(SweepEngine, EmptyJobListIsFine)
{
    EXPECT_TRUE(runSweepJobs({}).empty());
}

TEST(SweepEngine, FailedJobIsRetriedThenRecorded)
{
    SweepJob bad;
    bad.label = "always-fails";
    bad.make = []() -> std::unique_ptr<Core> {
        fatal("deliberate test failure");
    };
    SweepOptions options;
    options.maxAttempts = 3;
    const std::vector<SweepResult> results =
        runSweepJobs({bad}, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Failed);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_NE(results[0].error.find("deliberate test failure"),
              std::string::npos);
}

TEST(SweepEngine, FlakyJobSucceedsOnRetry)
{
    auto flaky_count = std::make_shared<std::atomic<u32>>(0);
    SweepJob flaky;
    flaky.label = "flaky";
    flaky.maxCycles = 100'000;
    flaky.make = [flaky_count]() -> std::unique_ptr<Core> {
        if (flaky_count->fetch_add(1) == 0)
            fatal("first attempt fails");
        return std::make_unique<RocketCore>(RocketConfig{},
                                            countLoop(100));
    };
    SweepOptions options;
    options.maxAttempts = 2;
    const std::vector<SweepResult> results =
        runSweepJobs({flaky}, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Ok);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_TRUE(results[0].finished);
}

TEST(SweepEngine, PathologicalJobTimesOutWithoutHangingCampaign)
{
    SweepJob endless;
    endless.label = "endless";
    endless.maxCycles = ~0ull; // would run forever
    endless.make = [] {
        return std::make_unique<RocketCore>(RocketConfig{},
                                            endlessLoop());
    };
    SweepJob good;
    good.label = "good";
    good.maxCycles = 100'000;
    good.make = [] {
        return std::make_unique<RocketCore>(RocketConfig{},
                                            countLoop(100));
    };
    SweepOptions options;
    options.workers = 2;
    options.timeoutSec = 0.05;
    options.chunkCycles = 4096;
    const std::vector<SweepResult> results =
        runSweepJobs({endless, good}, options);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, SweepStatus::Timeout);
    EXPECT_FALSE(results[0].finished);
    EXPECT_GT(results[0].cycles, 0u);
    EXPECT_EQ(results[1].status, SweepStatus::Ok);
}

TEST(SweepEngine, CompletionCallbackSeesEveryJobExactlyOnce)
{
    std::atomic<u32> calls{0};
    std::atomic<u64> index_mask{0};
    SweepOptions options;
    options.workers = 4;
    options.onResult = [&](const SweepResult &r) {
        calls++;
        index_mask |= 1ull << r.index;
    };
    const std::vector<SweepResult> results =
        runSweep(smallGrid(), options);
    EXPECT_EQ(calls.load(), results.size());
    EXPECT_EQ(index_mask.load(), (1ull << results.size()) - 1);
}

TEST(SweepEngine, TracePointsCarryTraceMetrics)
{
    GridSpec grid;
    grid.cores = {"boom-small"};
    grid.workloads = {"towers"};
    grid.maxCycles = 300'000;
    grid.withTrace = true;
    SweepOptions options;
    options.workers = 2;
    const std::vector<SweepResult> results = runSweep(grid, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Ok);
    // A branchy recursive workload recovers at least once.
    EXPECT_GT(results[0].recoverySequences, 0u);
}

TEST(SweepEngine, TraceOutWritesDeterministicStores)
{
    GridSpec grid;
    grid.cores = {"rocket"};
    grid.workloads = {"vvadd", "towers"};
    grid.maxCycles = 300'000;
    grid.withTrace = true;

    const std::string dir1 = "/tmp/icicle_sweep_store_w1";
    const std::string dir4 = "/tmp/icicle_sweep_store_w4";
    for (const std::string &dir : {dir1, dir4}) {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
    }
    SweepOptions options;
    options.workers = 1;
    options.traceOutDir = dir1;
    const std::vector<SweepResult> serial = runSweep(grid, options);
    options.workers = 4;
    options.traceOutDir = dir4;
    runSweep(grid, options);

    for (const SweepResult &row : serial) {
        SCOPED_TRACE(row.label);
        const std::string p1 = sweepTracePath(dir1, row.label);
        const std::string p4 = sweepTracePath(dir4, row.label);
        ASSERT_TRUE(std::filesystem::exists(p1));
        auto slurp = [](const std::string &path) {
            std::ifstream in(path, std::ios::binary);
            return std::string(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
        };
        // The store writer is deterministic: 1-worker and 4-worker
        // campaigns must produce byte-identical files.
        EXPECT_EQ(slurp(p1), slurp(p4));
        // And the store agrees with the row's trace-derived metrics.
        StoreReader reader(p1);
        EXPECT_EQ(reader.numCycles(), row.cycles);
        EXPECT_EQ(reader.recoveryCdf().sequences(),
                  row.recoverySequences);
    }
    std::filesystem::remove_all(dir1);
    std::filesystem::remove_all(dir4);
}

TEST(SweepCore, NamedConfigsAllConstruct)
{
    const Program program = countLoop(10);
    for (const std::string &name : sweepCoreNames()) {
        auto core =
            makeSweepCore(name, CounterArch::Distributed, program);
        ASSERT_NE(core, nullptr) << name;
    }
    EXPECT_THROW(
        makeSweepCore("boom-colossal", CounterArch::Scalar, program),
        FatalError);
}

TEST(SweepCore, ParseCounterArch)
{
    EXPECT_EQ(parseCounterArch("scalar"), CounterArch::Scalar);
    EXPECT_EQ(parseCounterArch("addwires"), CounterArch::AddWires);
    EXPECT_EQ(parseCounterArch("add-wires"), CounterArch::AddWires);
    EXPECT_EQ(parseCounterArch("distributed"),
              CounterArch::Distributed);
    EXPECT_THROW(parseCounterArch("quantum"), FatalError);
}

TEST(SweepFormat, CsvEscapesAndJsonIsWellFormedish)
{
    SweepResult r;
    r.index = 0;
    r.label = "evil,\"label\"";
    r.status = SweepStatus::Failed;
    r.error = "line1\nline2";
    const std::string csv = formatSweepCsv({r});
    EXPECT_NE(csv.find("\"evil,\"\"label\"\"\""), std::string::npos);
    const std::string json = formatSweepJson({r});
    EXPECT_NE(json.find("\\n"), std::string::npos);
    // Timing column only appears when asked for.
    EXPECT_EQ(csv.find("wall_ms"), std::string::npos);
    EXPECT_NE(formatSweepCsv({r}, true).find("wall_ms"),
              std::string::npos);
}

TEST(SweepEngine, TimedOutTracedJobSkipIsVisibleNotSilent)
{
    // Regression: a traced job that timed out under --trace-out used
    // to silently write no store — the row looked like every other
    // and the missing file surfaced only when a consumer went
    // looking. The skip must be visible in the result and reports.
    SweepJob endless;
    endless.label = "endless-traced";
    endless.maxCycles = ~0ull;
    endless.withTrace = true;
    endless.make = [] {
        return std::make_unique<RocketCore>(RocketConfig{},
                                            endlessLoop());
    };
    const std::string dir = "/tmp/icicle_sweep_timeout_trace";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SweepOptions options;
    options.timeoutSec = 0.05;
    options.chunkCycles = 4096;
    options.maxAttempts = 1;
    options.traceOutDir = dir;
    const std::vector<SweepResult> results =
        runSweepJobs({endless}, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Timeout);
    EXPECT_TRUE(results[0].traceStore.empty());
    EXPECT_FALSE(results[0].traceSkipped.empty());
    EXPECT_FALSE(std::filesystem::exists(
        sweepTracePath(dir, endless.label)));
    // The skip reaches both serialized reports.
    const std::string json = formatSweepJson(results);
    EXPECT_NE(json.find("\"trace_store\": null"), std::string::npos);
    EXPECT_NE(json.find("trace_skipped"), std::string::npos);
    const std::string csv = formatSweepCsv(results);
    EXPECT_NE(csv.find("trace_store"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, TracedOkRowNamesItsStoreInReports)
{
    GridSpec grid;
    grid.cores = {"rocket"};
    grid.workloads = {"vvadd"};
    grid.maxCycles = 300'000;
    grid.withTrace = true;
    const std::string dir = "/tmp/icicle_sweep_named_store";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SweepOptions options;
    options.traceOutDir = dir;
    const std::vector<SweepResult> results = runSweep(grid, options);
    ASSERT_EQ(results.size(), 1u);
    // Basename only: reports stay byte-identical across directories.
    EXPECT_EQ(results[0].traceStore, "rocket_vvadd_add-wires.icst");
    EXPECT_NE(formatSweepJson(results)
                  .find("\"trace_store\": \"rocket_vvadd_add-wires"
                        ".icst\""),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

// ---- journal / resume ------------------------------------------------

std::vector<SweepJob>
twoCountJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *label : {"count-a", "count-b"}) {
        SweepJob job;
        job.label = label;
        job.maxCycles = 100'000;
        job.make = [] {
            return std::make_unique<RocketCore>(RocketConfig{},
                                                countLoop(500));
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(SweepJournalFile, ResumeRestoresRecordsBitExactly)
{
    const std::string path = "/tmp/icicle_journal_unit.bin";
    std::remove(path.c_str());
    const std::vector<SweepJob> jobs = twoCountJobs();
    const u32 hash = sweepGridHash(jobs);

    // Run the full grid with a journal.
    SweepOptions options;
    options.journalPath = path;
    const std::vector<SweepResult> first =
        runSweepJobs(jobs, options);
    ASSERT_EQ(first.size(), 2u);

    // Resuming the finished journal restores both points without
    // re-running anything, bit-exactly.
    SweepJournal journal;
    const std::vector<SweepResult> restored =
        journal.resume(path, hash, jobs.size());
    journal.close();
    ASSERT_EQ(restored.size(), 2u);
    for (u64 i = 0; i < 2; i++) {
        EXPECT_EQ(restored[i].index, first[i].index);
        EXPECT_EQ(restored[i].status, first[i].status);
        EXPECT_EQ(restored[i].cycles, first[i].cycles);
        // Doubles travel as raw bit patterns: exact, not approximate.
        EXPECT_EQ(restored[i].ipc, first[i].ipc);
        EXPECT_EQ(restored[i].tma.retiring, first[i].tma.retiring);
        EXPECT_EQ(restored[i].counters.retiredUops,
                  first[i].counters.retiredUops);
    }
    std::remove(path.c_str());
}

TEST(SweepJournalFile, TornTailIsDroppedOnResume)
{
    const std::string path = "/tmp/icicle_journal_torn.bin";
    std::remove(path.c_str());
    const std::vector<SweepJob> jobs = twoCountJobs();
    const u32 hash = sweepGridHash(jobs);
    SweepOptions options;
    options.journalPath = path;
    runSweepJobs(jobs, options);

    // Tear the last record: chop 7 bytes off the file.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 7);

    SweepJournal journal;
    const std::vector<SweepResult> restored =
        journal.resume(path, hash, jobs.size());
    journal.close();
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].index, 0u);
    // The torn bytes were truncated away: a second resume sees a
    // clean single-record journal.
    SweepJournal again;
    EXPECT_EQ(again.resume(path, hash, jobs.size()).size(), 1u);
    std::remove(path.c_str());
}

TEST(SweepJournalFile, RefusesAForeignGrid)
{
    const std::string path = "/tmp/icicle_journal_foreign.bin";
    std::remove(path.c_str());
    const std::vector<SweepJob> jobs = twoCountJobs();
    SweepOptions options;
    options.journalPath = path;
    runSweepJobs(jobs, options);

    SweepJournal journal;
    // Wrong hash, wrong job count: both must refuse loudly.
    EXPECT_THROW(journal.resume(path, sweepGridHash(jobs) ^ 1,
                                jobs.size()),
                 FatalError);
    EXPECT_THROW(journal.resume(path, sweepGridHash(jobs),
                                jobs.size() + 1),
                 FatalError);
    std::remove(path.c_str());
}

TEST(SweepJournalFile, ForeignGridDiagnosticNamesPathAndBothHashes)
{
    // Regression: the mismatch diagnostic used to say only "grid
    // hash mismatch", leaving the user to guess which journal and
    // which grids. It must name the journal path and print both
    // hashes in hex so the two campaigns can actually be compared.
    const std::string path = "/tmp/icicle_journal_diag.bin";
    std::remove(path.c_str());
    const std::vector<SweepJob> jobs = twoCountJobs();
    const u32 journal_hash = sweepGridHash(jobs);
    const u32 campaign_hash = journal_hash ^ 0x5a5a;
    SweepOptions options;
    options.journalPath = path;
    runSweepJobs(jobs, options);

    auto hex = [](u32 hash) {
        char text[16];
        std::snprintf(text, sizeof text, "0x%08x", hash);
        return std::string(text);
    };
    SweepJournal journal;
    try {
        journal.resume(path, campaign_hash, jobs.size());
        FAIL() << "foreign grid resumed";
    } catch (const FatalError &err) {
        const std::string diag = err.what();
        EXPECT_NE(diag.find(path), std::string::npos) << diag;
        EXPECT_NE(diag.find(hex(journal_hash)), std::string::npos)
            << diag;
        EXPECT_NE(diag.find(hex(campaign_hash)), std::string::npos)
            << diag;
        EXPECT_NE(diag.find("refusing to resume"),
                  std::string::npos)
            << diag;
    }
    std::remove(path.c_str());
}

TEST(SweepEngine, ResumeAfterInjectedFailureIsByteIdentical)
{
    // A point that fails on every attempt of the first campaign is
    // journaled as Failed; the resumed campaign re-runs only that
    // point (now healthy) and the final report is byte-identical to
    // an uninterrupted clean run.
    const std::string path = "/tmp/icicle_journal_resume.bin";
    std::remove(path.c_str());
    const std::vector<SweepJob> jobs = twoCountJobs();

    SweepOptions clean_options;
    const std::vector<SweepResult> golden =
        runSweepJobs(jobs, clean_options);

    setFaultSpec("fail@job#1=2");
    SweepOptions first_options;
    first_options.journalPath = path;
    first_options.maxAttempts = 2;
    const std::vector<SweepResult> first =
        runSweepJobs(jobs, first_options);
    setFaultSpec("");
    ASSERT_EQ(first[0].status, SweepStatus::Ok);
    ASSERT_EQ(first[1].status, SweepStatus::Failed);
    EXPECT_NE(first[1].error.find("injected fault"),
              std::string::npos);

    SweepOptions resume_options;
    resume_options.journalPath = path;
    resume_options.resume = true;
    u32 reran = 0;
    resume_options.onResult = [&](const SweepResult &r) {
        if (r.index == 1)
            reran++;
    };
    const std::vector<SweepResult> resumed =
        runSweepJobs(jobs, resume_options);
    EXPECT_EQ(reran, 1u);
    EXPECT_EQ(formatSweepCsv(resumed), formatSweepCsv(golden));
    EXPECT_EQ(formatSweepJson(resumed), formatSweepJson(golden));
    EXPECT_EQ(formatSweepTable(resumed), formatSweepTable(golden));
    std::remove(path.c_str());
}

TEST(SweepEngine, InjectedHangTimesOutInsteadOfWedging)
{
    setFaultSpec("hang@job#0");
    std::vector<SweepJob> jobs = twoCountJobs();
    SweepOptions options;
    options.timeoutSec = 0.05;
    options.maxAttempts = 1;
    const std::vector<SweepResult> results =
        runSweepJobs(jobs, options);
    setFaultSpec("");
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, SweepStatus::Timeout);
    EXPECT_EQ(results[1].status, SweepStatus::Ok);
}

TEST(SweepEngine, UnknownWorkloadBecomesFailedRow)
{
    GridSpec grid;
    grid.cores = {"rocket"};
    grid.workloads = {"no-such-workload"};
    const std::vector<SweepResult> results = runSweep(grid, {});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, SweepStatus::Failed);
    EXPECT_NE(results[0].error.find("no-such-workload"),
              std::string::npos);
}

} // namespace
} // namespace icicle
