/**
 * @file
 * Fault-injection and recovery tests (the icicle-harden layer):
 * FaultPlan spec parsing and bounded firing, AtomicFile crash-atomic
 * commit/discard semantics, store salvage under exhaustive truncation
 * (every byte offset), seeded bit-flips (every block ordinal), torn
 * final blocks, and the damage-report / writeRepaired contract.
 *
 * The salvage acceptance property: for ANY prefix or single-bit
 * corruption of a store, opening with StoreOpen::Salvage never
 * crashes, recovers exactly the CRC-valid complete blocks, and the
 * damage mask agrees with the injected fault.
 */

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "fault/atomic_file.hh"
#include "fault/fault.hh"
#include "store/store.hh"
#include "trace/trace.hh"

namespace icicle
{
namespace
{

/** Disarm the global plan around every test, pass or fail. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { setFaultSpec(""); }
    void TearDown() override { setFaultSpec(""); }
};

class ScratchFile
{
  public:
    explicit ScratchFile(const char *name)
        : filePath(std::string("/tmp/icicle_fault_") + name)
    {}
    ~ScratchFile()
    {
        std::remove(filePath.c_str());
        std::remove((filePath + ".tmp").c_str());
    }
    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/** A small bursty trace over a multi-lane spec. */
Trace
burstyTrace(u64 seed, u64 cycles)
{
    TraceSpec spec;
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::FetchBubbles, 1);
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::InstRetired, 0);
    spec.addLane(EventId::BranchMispredict, 0);

    Rng rng(seed * 2654435761u + 5);
    Trace trace(spec);
    u64 word = 0;
    for (u64 c = 0; c < cycles; c++) {
        for (u32 f = 0; f < spec.numFields(); f++) {
            if (rng.chance(1, f < 3 ? 30 : 4))
                word ^= 1ull << f;
        }
        trace.append(word);
    }
    return trace;
}

// ---- FaultPlan spec parsing -----------------------------------------

TEST_F(FaultTest, InactivePlanByDefault)
{
    EXPECT_FALSE(faultPlan().active());
    EXPECT_EQ(faultPlan().onWrite(FaultSite::StoreWrite),
              FaultPlan::WriteAction::None);
    const FaultPlan::JobDecision d = faultPlan().onJob(0);
    EXPECT_FALSE(d.fail);
    EXPECT_FALSE(d.hang);
}

TEST_F(FaultTest, ParsesEveryClauseKind)
{
    setFaultSpec("seed=7, short-write@store#2, enospc@journal#0, "
                 "kill@report#1, torn-final@store, bitflip@store#3, "
                 "fail@job#5=2, hang@job#9");
    EXPECT_TRUE(faultPlan().active());
    const std::string desc = faultPlan().describe();
    EXPECT_NE(desc.find("short-write@store#2"), std::string::npos);
    EXPECT_NE(desc.find("fail@job#5"), std::string::npos);
}

TEST_F(FaultTest, MalformedSpecsAreFatal)
{
    EXPECT_THROW(setFaultSpec("bogus-kind@store#0"), FatalError);
    EXPECT_THROW(setFaultSpec("short-write@nowhere#0"), FatalError);
    EXPECT_THROW(setFaultSpec("short-write@store#abc"), FatalError);
    EXPECT_THROW(setFaultSpec("fail@store#0"), FatalError);
    // A failed reset leaves the plan disarmed, not half-armed.
    EXPECT_FALSE(faultPlan().active());
}

TEST_F(FaultTest, ClausesFireAtTheirOrdinalThenExpire)
{
    setFaultSpec("enospc@trace#2");
    EXPECT_EQ(faultPlan().onWrite(FaultSite::TraceWrite),
              FaultPlan::WriteAction::None); // op 0
    EXPECT_EQ(faultPlan().onWrite(FaultSite::StoreWrite),
              FaultPlan::WriteAction::None); // other site, op 0
    EXPECT_EQ(faultPlan().onWrite(FaultSite::TraceWrite),
              FaultPlan::WriteAction::None); // op 1
    EXPECT_EQ(faultPlan().onWrite(FaultSite::TraceWrite),
              FaultPlan::WriteAction::Enospc); // op 2: fires
    EXPECT_EQ(faultPlan().onWrite(FaultSite::TraceWrite),
              FaultPlan::WriteAction::None); // expired
}

TEST_F(FaultTest, JobClauseFiresBoundedTimes)
{
    setFaultSpec("fail@job#3=2");
    EXPECT_FALSE(faultPlan().onJob(0).fail);
    EXPECT_TRUE(faultPlan().onJob(3).fail);
    EXPECT_TRUE(faultPlan().onJob(3).fail);
    EXPECT_FALSE(faultPlan().onJob(3).fail) << "clause must expire";
}

// ---- serve-path (network-level) clauses -----------------------------

TEST_F(FaultTest, ServeSiteNamesCoverEverySite)
{
    EXPECT_STREQ(faultSiteName(FaultSite::ConnAccept), "accept");
    EXPECT_STREQ(faultSiteName(FaultSite::ConnReply), "reply");
    EXPECT_STREQ(faultSiteName(FaultSite::ConnRead), "read");
    EXPECT_STREQ(faultSiteName(FaultSite::ConnWrite), "write");
    EXPECT_STREQ(faultSiteName(FaultSite::WorkerDispatch), "worker");
}

/**
 * Parse → describe round-trip for every serve-path clause: the
 * describe() rendering must be re-parseable and name the same site,
 * ordinal, and (for stalls) duration — that string is what
 * icicle-chaos records per episode, so a drift here breaks replay.
 */
TEST_F(FaultTest, ServeClausesParseAndDescribeRoundTrip)
{
    const char *clauses[] = {
        "conn-reset@accept#2", "conn-reset@reply#0",
        "stall@read#1=250",    "stall@write#3=1000",
        "torn-frame@reply#4",  "kill@worker#1",
    };
    for (const char *clause : clauses) {
        SCOPED_TRACE(clause);
        setFaultSpec(clause);
        EXPECT_TRUE(faultPlan().active());
        const std::string desc = faultPlan().describe();
        EXPECT_NE(desc.find(clause), std::string::npos) << desc;
        // The rendering itself is a valid spec.
        setFaultSpec(desc.substr(desc.find(", ") + 2));
        EXPECT_TRUE(faultPlan().active());
        setFaultSpec("");
    }
}

TEST_F(FaultTest, ConnAcceptClauseFiresAtItsOrdinalOnce)
{
    setFaultSpec("conn-reset@accept#1");
    EXPECT_FALSE(faultPlan().onAccept()); // conn 0
    EXPECT_TRUE(faultPlan().onAccept());  // conn 1: fires
    EXPECT_FALSE(faultPlan().onAccept()); // expired
}

TEST_F(FaultTest, ReplyResetAndTornShareOneOrdinalCounter)
{
    // The documented contract: conn-reset@reply and torn-frame@reply
    // consume the same ConnReply ordinal stream, so one schedule
    // interleaves them deterministically.
    setFaultSpec("conn-reset@reply#0, torn-frame@reply#2");
    EXPECT_EQ(faultPlan().onReply(),
              FaultPlan::ReplyAction::Reset); // reply 0
    EXPECT_EQ(faultPlan().onReply(),
              FaultPlan::ReplyAction::None); // reply 1
    EXPECT_EQ(faultPlan().onReply(),
              FaultPlan::ReplyAction::Torn); // reply 2
    EXPECT_EQ(faultPlan().onReply(), FaultPlan::ReplyAction::None);
}

TEST_F(FaultTest, StallClausesCarryDurationNotRepeatCount)
{
    // The =N tail of a stall clause is milliseconds; the clause
    // still fires exactly once, at its ordinal.
    setFaultSpec("stall@read#1=750, stall@write#0=200");
    EXPECT_EQ(faultPlan().onConnRead(), 0u);    // read 0
    EXPECT_EQ(faultPlan().onConnRead(), 750u);  // read 1: fires
    EXPECT_EQ(faultPlan().onConnRead(), 0u);    // expired
    EXPECT_EQ(faultPlan().onConnWrite(), 200u); // write 0: fires
    EXPECT_EQ(faultPlan().onConnWrite(), 0u);
}

TEST_F(FaultTest, WorkerKillConsumesDispatchOrdinals)
{
    setFaultSpec("kill@worker#1");
    EXPECT_FALSE(faultPlan().onWorkerDispatch()); // dispatch 0
    EXPECT_TRUE(faultPlan().onWorkerDispatch());  // dispatch 1
    EXPECT_FALSE(faultPlan().onWorkerDispatch());
    // kill@worker is distinct from the write-site kill@SITE kinds:
    // it must not consume or fire on write ops.
    setFaultSpec("kill@worker#0");
    EXPECT_EQ(faultPlan().onWrite(FaultSite::StoreWrite),
              FaultPlan::WriteAction::None);
    EXPECT_TRUE(faultPlan().onWorkerDispatch());
}

TEST_F(FaultTest, ServeSitesKeepIndependentOrdinalStreams)
{
    // Accept, read, write, and dispatch ordinals are per-site: ops
    // at one site never advance another site's counter.
    setFaultSpec("conn-reset@accept#0, stall@read#0=100, "
                 "stall@write#0=100, kill@worker#0");
    EXPECT_EQ(faultPlan().onConnRead(), 100u);
    EXPECT_EQ(faultPlan().onConnWrite(), 100u);
    EXPECT_TRUE(faultPlan().onAccept());
    EXPECT_TRUE(faultPlan().onWorkerDispatch());
}

TEST_F(FaultTest, MalformedServeClausesAreFatal)
{
    // Wrong site for the kind.
    EXPECT_THROW(setFaultSpec("conn-reset@store#0"), FatalError);
    EXPECT_THROW(setFaultSpec("conn-reset@read#0"), FatalError);
    EXPECT_THROW(setFaultSpec("stall@accept#0=100"), FatalError);
    EXPECT_THROW(setFaultSpec("torn-frame@accept#0"), FatalError);
    // Missing required pieces.
    EXPECT_THROW(setFaultSpec("conn-reset@accept"), FatalError);
    EXPECT_THROW(setFaultSpec("stall@read#0"), FatalError);
    EXPECT_THROW(setFaultSpec("stall@read#0=0"), FatalError);
    EXPECT_THROW(setFaultSpec("torn-frame@reply"), FatalError);
    EXPECT_THROW(setFaultSpec("kill@worker"), FatalError);
    EXPECT_FALSE(faultPlan().active());
}

// ---- AtomicFile ------------------------------------------------------

TEST_F(FaultTest, AtomicFileCommitPublishesDiscardDoesNot)
{
    ScratchFile file("atomic.bin");
    {
        AtomicFile out(file.path(), FaultSite::ReportWrite);
        out.append(std::string("hello "));
        out.append(std::string("world"));
        EXPECT_EQ(out.size(), 11u);
        // Nothing visible at the target before commit.
        EXPECT_FALSE(std::filesystem::exists(file.path()));
        out.commit();
        EXPECT_TRUE(out.committed());
    }
    EXPECT_EQ(slurp(file.path()), "hello world");
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));

    {
        AtomicFile out(file.path(), FaultSite::ReportWrite);
        out.append(std::string("garbage"));
        out.discard();
    }
    // The discard must not clobber the committed content.
    EXPECT_EQ(slurp(file.path()), "hello world");
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST_F(FaultTest, InjectedWriteFailureLeavesNoArtifact)
{
    for (const char *spec :
         {"short-write@report#0", "enospc@report#0"}) {
        SCOPED_TRACE(spec);
        setFaultSpec(spec);
        ScratchFile file("fault.bin");
        EXPECT_THROW(writeFileAtomic(file.path(), "payload",
                                     FaultSite::ReportWrite),
                     FatalError);
        EXPECT_FALSE(std::filesystem::exists(file.path()));
        EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
        setFaultSpec("");
    }
}

TEST_F(FaultTest, InjectedFaultDoesNotClobberPreviousCommit)
{
    ScratchFile file("keep.bin");
    writeFileAtomic(file.path(), "golden", FaultSite::ReportWrite);
    setFaultSpec("enospc@report#0");
    EXPECT_THROW(writeFileAtomic(file.path(), "replacement",
                                 FaultSite::ReportWrite),
                 FatalError);
    setFaultSpec("");
    EXPECT_EQ(slurp(file.path()), "golden");
}

// ---- salvage: exhaustive truncation ---------------------------------

TEST_F(FaultTest, SalvageSurvivesTruncationAtEveryByteOffset)
{
    ScratchFile good("trunc_good.icst");
    ScratchFile cut("trunc_cut.icst");
    const u64 kBlock = 64, kCycles = 5 * kBlock + 17;
    const Trace trace = burstyTrace(3, kCycles);
    trace.toStore(good.path(), kBlock);
    const std::string bytes = slurp(good.path());
    ASSERT_GT(bytes.size(), 0u);

    u64 last_recovered = 0;
    bool reached_full = false;
    for (u64 len = 0; len <= bytes.size(); len++) {
        SCOPED_TRACE("prefix length " + std::to_string(len));
        {
            std::ofstream out(cut.path(), std::ios::binary);
            out.write(bytes.data(), static_cast<std::streamsize>(len));
        }
        u64 recovered = 0;
        try {
            StoreReader reader(cut.path(), StoreOpen::Salvage);
            const StoreDamage &damage = reader.damage();
            EXPECT_TRUE(damage.salvaged);
            recovered = damage.recoveredBlocks;
            // Recovered blocks form an intact prefix whose counts
            // must match the original trace exactly.
            if (damage.recoveredCycles > 0 &&
                damage.recoveredCycles <= kCycles) {
                const u64 window = damage.recoveredCycles;
                const u64 mask =
                    trace.spec().fieldMask(EventId::FetchBubbles);
                u64 expected = 0;
                for (u64 c = 0; c < window; c++)
                    expected += static_cast<u64>(
                        std::popcount(trace.raw()[c] & mask));
                EXPECT_EQ(reader.countInWindow(EventId::FetchBubbles,
                                               0, window),
                          expected);
            }
            if (len == bytes.size()) {
                EXPECT_TRUE(damage.clean());
                EXPECT_TRUE(damage.indexValid);
                EXPECT_EQ(damage.recoveredCycles, kCycles);
                reached_full = true;
            }
        } catch (const StoreError &err) {
            // Only the untrusted-header region may refuse salvage.
            EXPECT_EQ(err.kind(), StoreErrorKind::Unrecoverable)
                << err.what();
            recovered = 0;
        }
        // Monotone recovery: more bytes never recover fewer blocks.
        EXPECT_GE(recovered + 1, last_recovered)
            << "recovery must not regress with longer prefixes";
        last_recovered = recovered;
    }
    EXPECT_TRUE(reached_full);
    EXPECT_EQ(last_recovered, 6u); // 5 full blocks + 17-cycle tail
}

/**
 * Content check for the truncation fuzz above, at the block level:
 * each complete block that a prefix keeps must read back with the
 * exact per-event counts of the original trace.
 */
TEST_F(FaultTest, SalvagedPrefixBlocksReadBackExactly)
{
    ScratchFile good("prefix_good.icst");
    ScratchFile cut("prefix_cut.icst");
    const u64 kBlock = 128, kCycles = 4 * kBlock;
    const Trace trace = burstyTrace(9, kCycles);
    trace.toStore(good.path(), kBlock);
    const std::string bytes = slurp(good.path());

    // Sample a spread of prefix lengths (the exhaustive sweep above
    // covers every offset; here we decode and compare content).
    for (u64 len = bytes.size() / 7; len <= bytes.size();
         len += bytes.size() / 7) {
        SCOPED_TRACE("prefix length " + std::to_string(len));
        {
            std::ofstream out(cut.path(), std::ios::binary);
            out.write(bytes.data(), static_cast<std::streamsize>(len));
        }
        try {
            StoreReader reader(cut.path(), StoreOpen::Salvage);
            const u64 have = reader.damage().recoveredCycles;
            if (have == 0)
                continue;
            const Trace window = reader.readWindow(0, have);
            for (u64 c = 0; c < have; c++)
                ASSERT_EQ(window.raw()[c], trace.raw()[c])
                    << "cycle " << c;
        } catch (const StoreError &) {
            // Header-region truncation: nothing salvageable.
        }
    }
}

// ---- salvage: seeded bit flips --------------------------------------

TEST_F(FaultTest, BitFlipInAnyBlockIsIsolatedBySalvage)
{
    const u64 kBlock = 64, kCycles = 5 * kBlock;
    const Trace trace = burstyTrace(21, kCycles);

    for (u64 flipped = 0; flipped < 5; flipped++) {
        SCOPED_TRACE("bitflip in block " + std::to_string(flipped));
        ScratchFile file("bitflip.icst");
        setFaultSpec("seed=42,bitflip@store#" +
                     std::to_string(flipped));
        trace.toStore(file.path(), kBlock);
        setFaultSpec("");

        // Strict: the corruption must not pass verification. The
        // flip can land in a block footer (caught at open) or in a
        // plane (caught at verify) — either way a typed error.
        EXPECT_THROW(
            {
                StoreReader strict(file.path());
                strict.verify();
            },
            StoreError);

        // Salvage: exactly the flipped block is damaged.
        StoreReader reader(file.path(), StoreOpen::Salvage);
        const StoreDamage &damage = reader.damage();
        EXPECT_TRUE(damage.indexValid);
        ASSERT_EQ(damage.damaged.size(), 1u);
        EXPECT_EQ(damage.damaged[0].block, flipped);
        EXPECT_EQ(damage.damaged[0].startCycle, flipped * kBlock);
        EXPECT_EQ(damage.recoveredBlocks, 4u);
        EXPECT_EQ(damage.recoveredCycles, kCycles - kBlock);
        EXPECT_EQ(damage.damagedCycles, kBlock);
        EXPECT_FALSE(damage.clean());

        // Damage report carries the same mask.
        const std::string json = damage.toJson(file.path());
        EXPECT_NE(json.find("\"damaged_blocks\": 1"),
                  std::string::npos);
        EXPECT_NE(json.find("\"block\": " + std::to_string(flipped)),
                  std::string::npos);

        // Window queries over intact ranges are exact; windows
        // touching the damaged block refuse with a typed error.
        for (u64 b = 0; b < 5; b++) {
            const u64 begin = b * kBlock, end = begin + kBlock;
            if (b == flipped) {
                try {
                    reader.readWindow(begin, end);
                    FAIL() << "damaged window must throw";
                } catch (const StoreError &err) {
                    EXPECT_EQ(err.kind(),
                              StoreErrorKind::DamagedWindow);
                }
            } else {
                const Trace window = reader.readWindow(begin, end);
                for (u64 c = 0; c < kBlock; c++)
                    ASSERT_EQ(window.raw()[c], trace.raw()[begin + c]);
            }
        }

        // Repair re-streams the surviving blocks into a clean store.
        ScratchFile repaired("bitflip_repaired.icst");
        const u64 cycles = reader.writeRepaired(repaired.path());
        EXPECT_EQ(cycles, kCycles - kBlock);
        StoreReader clean(repaired.path());
        EXPECT_EQ(clean.numCycles(), kCycles - kBlock);
        clean.verify();
    }
}

// ---- salvage: torn final block --------------------------------------

TEST_F(FaultTest, TornFinalBlockRecoversEverythingBeforeIt)
{
    ScratchFile file("torn.icst");
    // A partial tail block (20 cycles) is the one that gets torn.
    const u64 kBlock = 64, kFull = 4 * kBlock, kCycles = kFull + 20;
    const Trace trace = burstyTrace(33, kCycles);
    setFaultSpec("torn-final@store");
    trace.toStore(file.path(), kBlock);
    setFaultSpec("");

    // The torn store has no index/trailer: a strict open refuses.
    EXPECT_THROW(StoreReader strict(file.path()), StoreError);

    StoreReader reader(file.path(), StoreOpen::Salvage);
    const StoreDamage &damage = reader.damage();
    EXPECT_FALSE(damage.indexValid);
    EXPECT_EQ(damage.recoveredBlocks, 4u);
    EXPECT_EQ(damage.recoveredCycles, kFull);
    EXPECT_GT(damage.trailingBytes, 0u);
    const Trace window = reader.readWindow(0, kFull);
    for (u64 c = 0; c < kFull; c++)
        ASSERT_EQ(window.raw()[c], trace.raw()[c]);
}

// ---- store writer faults --------------------------------------------

TEST_F(FaultTest, StoreWriteFaultLeavesNoPartialStore)
{
    ScratchFile file("nospc.icst");
    setFaultSpec("enospc@store#0");
    const Trace trace = burstyTrace(5, 1000);
    EXPECT_THROW(trace.toStore(file.path(), 64), FatalError);
    setFaultSpec("");
    EXPECT_FALSE(std::filesystem::exists(file.path()))
        << "a failed store write must not publish the target";
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"))
        << "a failed store write must clean up its tmp file";
}

TEST_F(FaultTest, HeaderCorruptionIsUnrecoverable)
{
    ScratchFile file("header.icst");
    burstyTrace(8, 500).toStore(file.path(), 64);
    std::string bytes = slurp(file.path());
    bytes[6] ^= 0x10; // inside the field-table region
    {
        std::ofstream out(file.path(), std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    try {
        StoreReader reader(file.path(), StoreOpen::Salvage);
        FAIL() << "corrupted header must refuse salvage";
    } catch (const StoreError &err) {
        EXPECT_EQ(err.kind(), StoreErrorKind::Unrecoverable);
    }
}

} // namespace
} // namespace icicle
