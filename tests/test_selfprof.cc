/**
 * @file
 * Tests for the bench/selfprof support library: the JSON reader, the
 * executable BENCH_selfprof.json schema, the calibration-normalized
 * regression comparison, and the HostProfiler fallback contract.
 */

#include <gtest/gtest.h>

#include "selfprof/selfprof.hh"

namespace icicle
{
namespace
{

const char *kValidReport = R"({
  "schema_version": 1,
  "counter_source": "wall_clock",
  "calibration": {"spin_iters_per_sec": 5.0e8},
  "lanes": [
    {"name": "rocket_mix", "sim_cycles": 1000000,
     "wall_seconds": 0.1, "sim_cycles_per_sec": 1.0e7},
    {"name": "boom_large_mix", "sim_cycles": 1000000,
     "wall_seconds": 0.5, "sim_cycles_per_sec": 2.0e6}
  ]
})";

JsonValue
parseOk(const std::string &text)
{
    std::string error;
    JsonValue value = parseJson(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    return value;
}

TEST(SelfprofJson, ParsesScalarsArraysObjects)
{
    const JsonValue v = parseOk(
        R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
    ASSERT_TRUE(v.get("b")->isArray());
    EXPECT_EQ(v.get("b")->items.size(), 3u);
    EXPECT_TRUE(v.get("b")->items[0].boolean);
    EXPECT_EQ(v.get("b")->items[1].kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.get("b")->items[2].str, "x\n");
    EXPECT_DOUBLE_EQ(v.get("c")->get("d")->number, -2.0);
}

TEST(SelfprofJson, RejectsMalformedInput)
{
    for (const char *bad :
         {"{", "[1,", "{\"a\" 1}", "tru", "{} garbage", ""}) {
        std::string error;
        const JsonValue v = parseJson(bad, &error);
        EXPECT_EQ(v.kind, JsonValue::Kind::Null) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(SelfprofSchema, AcceptsValidReport)
{
    std::string error;
    EXPECT_TRUE(validateSelfprofReport(parseOk(kValidReport), &error))
        << error;
}

TEST(SelfprofSchema, RejectsBrokenReports)
{
    // Each mutation breaks exactly one schema rule.
    const struct
    {
        const char *from;
        const char *to;
    } kMutations[] = {
        {"\"schema_version\": 1", "\"schema_version\": 2"},
        {"\"counter_source\": \"wall_clock\"",
         "\"counter_source\": \"stopwatch\""},
        {"\"spin_iters_per_sec\": 5.0e8",
         "\"spin_iters_per_sec\": 0"},
        {"\"sim_cycles_per_sec\": 1.0e7",
         "\"sim_cycles_per_sec\": \"fast\""},
        {"\"name\": \"rocket_mix\"", "\"name\": \"\""},
    };
    for (const auto &mutation : kMutations) {
        std::string text = kValidReport;
        const auto at = text.find(mutation.from);
        ASSERT_NE(at, std::string::npos) << mutation.from;
        text.replace(at, std::string(mutation.from).size(),
                     mutation.to);
        std::string error;
        EXPECT_FALSE(validateSelfprofReport(parseOk(text), &error))
            << "mutation not caught: " << mutation.to;
        EXPECT_FALSE(error.empty());
    }
    std::string error;
    EXPECT_FALSE(validateSelfprofReport(
        parseOk(R"({"schema_version": 1})"), &error));
}

TEST(SelfprofCheck, NormalizesByCalibration)
{
    const JsonValue baseline = parseOk(kValidReport);

    // Same normalized throughput on a host twice as fast: both the
    // spin rate and the lane rates double; no regression.
    std::string faster = kValidReport;
    auto scale = [&faster](const std::string &from,
                           const std::string &to) {
        faster.replace(faster.find(from), from.size(), to);
    };
    scale("5.0e8", "1.0e9");
    scale("1.0e7", "2.0e7");
    scale("2.0e6", "4.0e6");
    const SelfprofComparison same =
        compareSelfprofReports(baseline, parseOk(faster), 0.20);
    EXPECT_TRUE(same.ok) << same.report;

    // A 30% single-lane drop at equal calibration fails the gate.
    std::string slower = kValidReport;
    slower.replace(slower.find("2.0e6"), 5, "1.4e6");
    const SelfprofComparison worse =
        compareSelfprofReports(baseline, parseOk(slower), 0.20);
    EXPECT_FALSE(worse.ok);
    EXPECT_NE(worse.report.find("REGRESSION"), std::string::npos);

    // The same drop passes a looser tolerance.
    EXPECT_TRUE(
        compareSelfprofReports(baseline, parseOk(slower), 0.35).ok);
}

TEST(SelfprofHost, ProfilerDegradesGracefully)
{
    // Whatever the kernel allows, the contract holds: either real
    // counters (then instructions > 0 for any nonempty region) or a
    // clean available == false fallback. Never garbage.
    HostProfiler profiler;
    profiler.begin();
    volatile u64 sink = 0;
    for (u64 i = 0; i < 10000; i++)
        sink = sink + i;
    const HostCounters counters = profiler.end();
    EXPECT_EQ(counters.available, profiler.perfAvailable());
    if (counters.available)
        EXPECT_GT(counters.instructions, 0u);
    else
        EXPECT_EQ(counters.instructions, 0u);
}

TEST(SelfprofHost, CalibrationIsPositive)
{
    EXPECT_GT(calibrateSpinRate(), 0.0);
}

} // namespace
} // namespace icicle
