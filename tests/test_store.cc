/**
 * @file
 * icestore tests: bit-identical roundtrips across bundle shapes and
 * block geometries, corruption detection (block CRCs, footer index,
 * truncation), metadata-only query behaviour (popcount queries never
 * decode a block), the analyzer-equivalence property test (randomized
 * bursty traces and windows, 100+ seeds), streaming capture
 * equivalence, and the bounded-memory guarantee of the streaming
 * path.
 */

#include <atomic>
#include <bit>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>

#include "boom/boom.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "store/store.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

using namespace reg;

class ScratchFile
{
  public:
    explicit ScratchFile(const char *name)
        : filePath(std::string("/tmp/icicle_store_") + name + ".icst")
    {}
    ~ScratchFile() { std::remove(filePath.c_str()); }
    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

Program
branchyLoop(u64 iterations)
{
    ProgramBuilder b("branchy");
    Label loop = b.newLabel(), skip = b.newLabel();
    b.li(s0, 88172645463325252ll);
    b.li(t2, static_cast<i64>(iterations));
    b.bind(loop);
    b.slli(t0, s0, 13);
    b.xor_(s0, s0, t0);
    b.srli(t0, s0, 7);
    b.xor_(s0, s0, t0);
    b.andi(t0, s0, 1);
    b.beqz(t0, skip);
    b.addi(t3, t3, 1);
    b.bind(skip);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    return b.build();
}

/**
 * A randomized bursty trace: each field flips state with a small
 * per-cycle probability, so bits arrive in runs — the Fig. 8
 * structure the encoder targets. The spec mixes the multi-lane
 * events the analyzer treats specially.
 */
Trace
randomBurstyTrace(u64 seed, u64 cycles)
{
    TraceSpec spec;
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::FetchBubbles, 1);
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::Recovering, 1);
    spec.addLane(EventId::ICacheBlocked, 0);
    spec.addLane(EventId::BranchMispredict, 0);
    spec.addLane(EventId::InstRetired, 0);
    spec.addLane(EventId::InstIssued, 0);
    spec.addLane(EventId::Flush, 0);
    spec.addLane(EventId::DCacheBlocked, 0);

    Rng rng(seed * 2654435761u + 1);
    Trace trace(spec);
    u64 word = 0;
    for (u64 c = 0; c < cycles; c++) {
        for (u32 f = 0; f < spec.numFields(); f++) {
            // Low bits flip rarely (long runs); a couple of fields
            // flip often to exercise dense planes.
            const u64 flip_denom = f < 8 ? 40 : 3;
            if (rng.chance(1, flip_denom))
                word ^= 1ull << f;
        }
        trace.append(word);
    }
    return trace;
}

void
expectStoreRoundTrip(const Trace &trace, const std::string &path,
                     u32 block_cycles)
{
    trace.toStore(path, block_cycles);
    const Trace loaded = Trace::fromStore(path);
    ASSERT_EQ(loaded.spec().numFields(), trace.spec().numFields());
    for (u32 f = 0; f < trace.spec().numFields(); f++) {
        EXPECT_EQ(loaded.spec().fields[f].event,
                  trace.spec().fields[f].event);
        EXPECT_EQ(loaded.spec().fields[f].lane,
                  trace.spec().fields[f].lane);
    }
    EXPECT_EQ(loaded.raw(), trace.raw());
}

// ---- roundtrips ------------------------------------------------------

TEST(StoreFormat, RoundTripFrontendBundle)
{
    ScratchFile file("frontend");
    RocketCore core(RocketConfig{}, branchyLoop(300));
    const Trace trace =
        traceRun(core, TraceSpec::frontendBundle(), 1'000'000);
    expectStoreRoundTrip(trace, file.path(), 0);
}

TEST(StoreFormat, RoundTripBoomTmaBundle)
{
    ScratchFile file("boom_tma");
    BoomCore core(BoomConfig::large(), branchyLoop(500));
    const Trace trace =
        traceRun(core, TraceSpec::tmaBundle(core), 1'000'000);
    // Tiny blocks force many blocks and a partial tail.
    expectStoreRoundTrip(trace, file.path(), 64);
}

TEST(StoreFormat, RoundTripExactBlockMultiple)
{
    ScratchFile file("exact");
    Trace trace = randomBurstyTrace(7, 4 * 512);
    expectStoreRoundTrip(trace, file.path(), 512);
    StoreReader reader(file.path());
    EXPECT_EQ(reader.numBlocks(), 4u);
    EXPECT_EQ(reader.numCycles(), 4u * 512);
}

TEST(StoreFormat, RoundTripSingleCycleAndEmpty)
{
    ScratchFile file("tiny");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    Trace trace(spec);
    expectStoreRoundTrip(trace, file.path(), 16); // zero cycles
    trace.append(1);
    expectStoreRoundTrip(trace, file.path(), 16);
}

TEST(StoreFormat, RoundTripAllZeroAndAllOnePlanes)
{
    ScratchFile file("extremes");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);      // all ones
    spec.addLane(EventId::Recovering, 0);  // all zeros
    spec.addLane(EventId::FetchBubbles, 0);
    Trace trace(spec);
    for (u64 c = 0; c < 3000; c++)
        trace.append(0b001ull | ((c % 2) << 2));
    expectStoreRoundTrip(trace, file.path(), 1024);
}

// ---- corruption detection -------------------------------------------

TEST(StoreFormat, RejectsGarbage)
{
    ScratchFile file("garbage");
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a trace store, not even close";
    out.close();
    EXPECT_THROW(StoreReader reader(file.path()), FatalError);
}

TEST(StoreFormat, RejectsTruncatedStore)
{
    ScratchFile file("truncated");
    randomBurstyTrace(3, 2000).toStore(file.path(), 256);
    std::ifstream in(file.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(file.path(), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 40));
    out.close();
    // The trailer is gone: the file cannot be located or opened.
    EXPECT_THROW(StoreReader reader(file.path()), FatalError);
}

TEST(StoreFormat, DetectsFlippedBlockByte)
{
    ScratchFile file("bitrot");
    randomBurstyTrace(4, 2000).toStore(file.path(), 256);
    std::fstream io(file.path(),
                    std::ios::binary | std::ios::in | std::ios::out);
    // Flip a byte inside the first block's payload (past the
    // header: 16 bytes + 10 fields x 8 bytes = 96).
    io.seekp(110);
    char byte;
    io.seekg(110);
    io.get(byte);
    io.seekp(110);
    byte = static_cast<char>(byte ^ 0x40);
    io.put(byte);
    io.close();
    StoreReader reader(file.path());
    // Metadata was untouched; decoding the block must fail loudly.
    EXPECT_THROW(reader.verify(), FatalError);
    EXPECT_THROW(reader.readAll(), FatalError);
}

// ---- metadata-only queries ------------------------------------------

TEST(StoreReader, PopcountQueriesNeverDecode)
{
    ScratchFile file("meta");
    const Trace trace = randomBurstyTrace(11, 20'000);
    trace.toStore(file.path(), 1024);
    StoreReader reader(file.path());
    for (const TraceField &field : trace.spec().fields) {
        EXPECT_EQ(reader.count(field.event, field.lane),
                  trace.count(field.event, field.lane));
    }
    EXPECT_EQ(reader.countAllLanes(EventId::FetchBubbles),
              trace.countAllLanes(EventId::FetchBubbles));
    EXPECT_EQ(reader.blocksDecoded(), 0u)
        << "whole-trace popcounts must come from block footers";
}

TEST(StoreReader, WindowedCountDecodesOnlyBoundaryBlocks)
{
    ScratchFile file("boundary");
    const Trace trace = randomBurstyTrace(13, 64 * 1024);
    trace.toStore(file.path(), 1024);
    StoreReader reader(file.path());
    // A window spanning 40 blocks with interior blocks fully
    // covered: at most the two boundary blocks decode.
    const u64 begin = 1024 * 10 + 100, end = 1024 * 50 + 900;
    u64 expected = 0;
    const u64 mask = trace.spec().fieldMask(EventId::FetchBubbles);
    for (u64 c = begin; c < end; c++)
        expected += static_cast<u64>(
            std::popcount(trace.raw()[c] & mask));
    EXPECT_EQ(reader.countInWindow(EventId::FetchBubbles, begin, end),
              expected);
    EXPECT_LE(reader.blocksDecoded(), 2u);
}

TEST(StoreReader, ConcurrentQueriesAreThreadSafe)
{
    // One shared reader, many query threads — the shape icicled uses
    // to serve windowed-TMA requests. The ifstream and the decoded-
    // block cache are guarded by an internal mutex and decoded
    // blocks are handed out as shared_ptr snapshots; this test is
    // the TSan probe for that contract (the tsan CI job runs it),
    // and single-threaded builds still check every answer.
    ScratchFile file("concurrent");
    const u64 cycles = 64 * 1024;
    const Trace trace = randomBurstyTrace(29, cycles);
    trace.toStore(file.path(), 1024);
    StoreReader reader(file.path());
    TraceAnalyzer analyzer(trace);

    // Precompute expected answers single-threaded (the analyzer is
    // not part of the contract under test).
    struct Window
    {
        u64 begin, end;
        u64 bubbles;
        TmaResult tma;
    };
    std::vector<Window> windows;
    Rng rng(12345);
    for (int i = 0; i < 24; i++) {
        Window w;
        w.begin = rng.below(cycles - 2);
        w.end = w.begin + 1 + rng.below(cycles - w.begin - 1);
        w.bubbles = 0;
        const u64 mask =
            trace.spec().fieldMask(EventId::FetchBubbles);
        for (u64 c = w.begin; c < w.end; c++)
            w.bubbles += static_cast<u64>(
                std::popcount(trace.raw()[c] & mask));
        w.tma = analyzer.windowTma(w.begin, w.end, 1);
        windows.push_back(w);
    }

    std::atomic<u64> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&, t] {
            // Each thread walks the windows from a different start,
            // so distinct threads hit the same block ranges at
            // different times and contend on the decode cache.
            for (size_t i = 0; i < windows.size() * 3; i++) {
                const Window &w =
                    windows[(i + static_cast<size_t>(t) * 7) %
                            windows.size()];
                if (reader.countInWindow(EventId::FetchBubbles,
                                         w.begin, w.end) !=
                    w.bubbles)
                    failures.fetch_add(1);
                const TmaResult tma =
                    reader.windowTma(w.begin, w.end, 1);
                if (tma.retiring != w.tma.retiring ||
                    tma.totalSlots != w.tma.totalSlots ||
                    tma.frontend != w.tma.frontend)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_GT(reader.blocksDecoded(), 0u);
}

// ---- analyzer equivalence (property test) ---------------------------

void
expectTmaEqual(const TmaResult &a, const TmaResult &b)
{
    // Identical integer counters through the same model: the doubles
    // must match bit-for-bit, not approximately.
    EXPECT_EQ(a.retiring, b.retiring);
    EXPECT_EQ(a.badSpeculation, b.badSpeculation);
    EXPECT_EQ(a.frontend, b.frontend);
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.machineClears, b.machineClears);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.fetchLatency, b.fetchLatency);
    EXPECT_EQ(a.pcResteer, b.pcResteer);
    EXPECT_EQ(a.coreBound, b.coreBound);
    EXPECT_EQ(a.memBound, b.memBound);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.totalSlots, b.totalSlots);
}

TEST(StoreReader, MatchesInMemoryAnalyzerOverRandomizedSeeds)
{
    for (u64 seed = 0; seed < 110; seed++) {
        ScratchFile file("property");
        Rng rng(seed + 17);
        const u64 cycles = 2000 + rng.below(6000);
        const u32 block = 128u << rng.below(4); // 128..1024
        const Trace trace = randomBurstyTrace(seed, cycles);
        trace.toStore(file.path(), block);
        StoreReader reader(file.path());
        TraceAnalyzer analyzer(trace);
        SCOPED_TRACE("seed " + std::to_string(seed));

        ASSERT_EQ(reader.numCycles(), trace.numCycles());

        // Counter recomputation over a random window.
        const u64 begin = rng.below(cycles - 1);
        const u64 end = begin + 1 + rng.below(cycles - begin);
        const u32 width = 1 + static_cast<u32>(rng.below(4));
        expectTmaEqual(reader.windowTma(begin, end, width),
                       analyzer.windowTma(begin, end, width));

        // Whole-trace counters per traced field.
        for (const TraceField &field : trace.spec().fields) {
            EXPECT_EQ(reader.countAllLanes(field.event),
                      trace.countAllLanes(field.event));
        }

        // Run detection across lanes (block stitching included).
        const auto expect_runs = analyzer.runsOfAny(
            EventId::Recovering);
        const auto got_runs = reader.runsOfAny(EventId::Recovering);
        ASSERT_EQ(got_runs.size(), expect_runs.size());
        for (std::size_t r = 0; r < got_runs.size(); r++) {
            EXPECT_EQ(got_runs[r].start, expect_runs[r].start);
            EXPECT_EQ(got_runs[r].length, expect_runs[r].length);
        }

        // Recovery CDF and Table VI overlap bound.
        EXPECT_EQ(reader.recoveryCdf().lengths,
                  analyzer.recoveryCdf().lengths);
        const OverlapBound expect_bound =
            analyzer.overlapUpperBound(width, 50);
        const OverlapBound got_bound =
            reader.overlapUpperBound(width, 50);
        EXPECT_EQ(got_bound.cycles, expect_bound.cycles);
        EXPECT_EQ(got_bound.overlapSlots, expect_bound.overlapSlots);
        EXPECT_EQ(got_bound.overlapFraction,
                  expect_bound.overlapFraction);
        EXPECT_EQ(got_bound.frontendFraction,
                  expect_bound.frontendFraction);
        EXPECT_EQ(got_bound.badSpecFraction,
                  expect_bound.badSpecFraction);
        EXPECT_EQ(got_bound.frontendPerturbation,
                  expect_bound.frontendPerturbation);
        EXPECT_EQ(got_bound.badSpecPerturbation,
                  expect_bound.badSpecPerturbation);
    }
}

TEST(StoreReader, MatchesAnalyzerOnRealBoomTrace)
{
    ScratchFile file("boom_real");
    BoomCore core(BoomConfig::large(), branchyLoop(2000));
    const Trace trace =
        traceRun(core, TraceSpec::tmaBundle(core), 10'000'000);
    ASSERT_TRUE(core.done());
    trace.toStore(file.path(), 4096);
    StoreReader reader(file.path());
    TraceAnalyzer analyzer(trace);
    const u64 n = trace.numCycles();
    expectTmaEqual(reader.windowTma(0, n, core.coreWidth()),
                   analyzer.windowTma(0, n, core.coreWidth()));
    expectTmaEqual(
        reader.windowTma(n / 3, 2 * n / 3, core.coreWidth()),
        analyzer.windowTma(n / 3, 2 * n / 3, core.coreWidth()));
    EXPECT_EQ(reader.recoveryCdf().lengths,
              analyzer.recoveryCdf().lengths);
    const OverlapBound a = analyzer.overlapUpperBound(
        core.coreWidth());
    const OverlapBound s = reader.overlapUpperBound(
        core.coreWidth());
    EXPECT_EQ(s.overlapSlots, a.overlapSlots);
    EXPECT_EQ(s.overlapFraction, a.overlapFraction);
}

TEST(StoreReader, WindowValidationMatchesAnalyzer)
{
    ScratchFile file("validate");
    const Trace trace = randomBurstyTrace(21, 1000);
    trace.toStore(file.path(), 256);
    StoreReader reader(file.path());
    EXPECT_THROW(reader.windowTma(10, 10, 1), FatalError);
    EXPECT_THROW(reader.windowTma(1000, 2000, 1), FatalError);
    EXPECT_THROW(reader.windowTma(5000, 6000, 1), FatalError);
    // end past the trace is clamped, like the analyzer.
    TraceAnalyzer analyzer(trace);
    expectTmaEqual(reader.windowTma(900, 99'999, 2),
                   analyzer.windowTma(900, 99'999, 2));
}

// ---- streaming capture ----------------------------------------------

TEST(StoreStreaming, MatchesBatchCapture)
{
    ScratchFile file("stream");
    const Program program = branchyLoop(400);
    RocketCore batch_core(RocketConfig{}, program);
    const Trace batch =
        traceRun(batch_core, TraceSpec::frontendBundle(), 1'000'000);

    RocketCore stream_core(RocketConfig{}, program);
    const u64 cycles = streamTraceToStore(
        stream_core, TraceSpec::frontendBundle(), 1'000'000,
        file.path(), 512);
    EXPECT_EQ(cycles, batch.numCycles());
    const Trace loaded = Trace::fromStore(file.path());
    EXPECT_EQ(loaded.raw(), batch.raw());
}

TEST(StoreStreaming, StreamedStoreIsByteIdenticalToBatchStore)
{
    ScratchFile stream_file("stream_bytes");
    ScratchFile batch_file("batch_bytes");
    const Program program = branchyLoop(400);
    RocketCore batch_core(RocketConfig{}, program);
    traceRun(batch_core, TraceSpec::frontendBundle(), 1'000'000)
        .toStore(batch_file.path(), 512);
    RocketCore stream_core(RocketConfig{}, program);
    streamTraceToStore(stream_core, TraceSpec::frontendBundle(),
                       1'000'000, stream_file.path(), 512);

    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    };
    EXPECT_EQ(slurp(stream_file.path()), slurp(batch_file.path()));
}

TEST(StoreStreaming, TenMillionCyclesBoundedMemory)
{
    // The acceptance guarantee: a 10M-cycle streaming capture keeps
    // peak trace memory at O(block size). The streaming path holds
    // no Trace at all — Trace::records never exists, let alone
    // grows — so the bound to check is the writer's block buffer.
    ScratchFile file("bounded");
    TraceSpec spec;
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::ICacheBlocked, 0);
    StoreWriter writer(spec, file.path(), kStoreDefaultBlockCycles);
    Rng rng(99);
    u64 word = 0, expected_bubbles = 0;
    const u64 kCycles = 10'000'000;
    for (u64 c = 0; c < kCycles; c++) {
        if (rng.chance(1, 50))
            word ^= 1;
        if (rng.chance(1, 200))
            word ^= 2;
        if (rng.chance(1, 500))
            word ^= 4;
        expected_bubbles += word & 1;
        writer.append(word);
        ASSERT_LE(writer.bufferedCycles(), writer.blockCycles());
    }
    writer.finish();
    EXPECT_EQ(writer.cyclesWritten(), kCycles);
    EXPECT_LE(writer.peakBufferedCycles(), writer.blockCycles());

    StoreReader reader(file.path());
    EXPECT_EQ(reader.numCycles(), kCycles);
    EXPECT_EQ(reader.countAllLanes(EventId::FetchBubbles),
              expected_bubbles);
    EXPECT_EQ(reader.blocksDecoded(), 0u);
    // Narrow window on the 10M-cycle store: only boundary blocks
    // decode (the sublinear-query property).
    reader.windowTma(5'000'000, 5'000'200, 1);
    EXPECT_LE(reader.blocksDecoded(), 2u);
}

TEST(StoreWriter, ZeroBlockCyclesSelectsDefault)
{
    // The CLI passes 0 for "no --block given"; it must map to the
    // default, not degenerate single-cycle blocks.
    ScratchFile file("zero_block");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    StoreWriter writer(spec, file.path(), 0);
    EXPECT_EQ(writer.blockCycles(), kStoreDefaultBlockCycles);
    writer.append(1);
    writer.finish();
    EXPECT_EQ(StoreReader(file.path()).blockCycles(),
              kStoreDefaultBlockCycles);
}

TEST(StoreWriter, AppendAfterFinishIsFatal)
{
    ScratchFile file("sealed");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    StoreWriter writer(spec, file.path(), 64);
    writer.append(1);
    writer.finish();
    EXPECT_THROW(writer.append(1), FatalError);
}

} // namespace
} // namespace icicle
