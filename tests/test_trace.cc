/**
 * @file
 * Trace infrastructure tests: bundle capture fidelity (trace counts
 * equal live counter totals — the property Icicle's validation relies
 * on), binary round-trips, run detection, recovery CDFs, overlap
 * bounds, and windowed temporal TMA.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "common/logging.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

using namespace reg;

Program
branchyLoop(u64 iterations)
{
    ProgramBuilder b("branchy");
    Label loop = b.newLabel(), skip = b.newLabel();
    b.li(s0, 88172645463325252ll);
    b.li(t2, static_cast<i64>(iterations));
    b.bind(loop);
    b.slli(t0, s0, 13);
    b.xor_(s0, s0, t0);
    b.srli(t0, s0, 7);
    b.xor_(s0, s0, t0);
    b.andi(t0, s0, 1);
    b.beqz(t0, skip);
    b.addi(t3, t3, 1);
    b.bind(skip);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    return b.build();
}

TEST(TraceSpec, IndexAndDeduplication)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::Recovering, 0); // duplicate ignored
    spec.addLane(EventId::FetchBubbles, 1);
    EXPECT_EQ(spec.numFields(), 2u);
    EXPECT_EQ(spec.indexOf(EventId::Recovering), 0);
    EXPECT_EQ(spec.indexOf(EventId::FetchBubbles, 1), 1);
    EXPECT_EQ(spec.indexOf(EventId::FetchBubbles, 0), -1);
}

TEST(Trace, CountsMatchLiveCounters)
{
    // In-band counters and out-of-band trace sample the same bus:
    // totals must agree exactly.
    BoomCore core(BoomConfig::large(), branchyLoop(2000));
    TraceSpec spec = TraceSpec::tmaBundle(core);
    Trace trace = traceRun(core, spec, 10'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(trace.numCycles(), core.cycle());
    EXPECT_EQ(trace.countAllLanes(EventId::UopsIssued),
              core.total(EventId::UopsIssued));
    EXPECT_EQ(trace.countAllLanes(EventId::FetchBubbles),
              core.total(EventId::FetchBubbles));
    EXPECT_EQ(trace.count(EventId::Recovering),
              core.total(EventId::Recovering));
    EXPECT_EQ(trace.count(EventId::BranchMispredict),
              core.total(EventId::BranchMispredict));
}

TEST(Trace, BinaryRoundTrip)
{
    RocketCore core(RocketConfig{}, branchyLoop(300));
    Trace trace =
        traceRun(core, TraceSpec::frontendBundle(), 1'000'000);
    const std::string path = "/tmp/icicle_test_trace.bin";
    writeTrace(trace, path);
    Trace loaded = readTrace(path);
    ASSERT_EQ(loaded.numCycles(), trace.numCycles());
    ASSERT_EQ(loaded.spec().numFields(), trace.spec().numFields());
    EXPECT_EQ(loaded.raw(), trace.raw());
    std::remove(path.c_str());
}

TEST(Trace, ReadRejectsGarbage)
{
    const std::string path = "/tmp/icicle_bad_trace.bin";
    FILE *f = fopen(path.c_str(), "wb");
    fputs("not a trace", f);
    fclose(f);
    EXPECT_THROW(readTrace(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceAnalyzer, RunDetection)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    // Pattern: 0 1 1 1 0 0 1 0 1 1
    for (int bit : {0, 1, 1, 1, 0, 0, 1, 0, 1, 1})
        trace.append(static_cast<u64>(bit));
    TraceAnalyzer analyzer(trace);
    const auto runs = analyzer.runsOf(EventId::Recovering);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].start, 1u);
    EXPECT_EQ(runs[0].length, 3u);
    EXPECT_EQ(runs[1].start, 6u);
    EXPECT_EQ(runs[1].length, 1u);
    EXPECT_EQ(runs[2].start, 8u);
    EXPECT_EQ(runs[2].length, 2u); // run reaching the end
}

TEST(TraceAnalyzer, RecoveryCdfFromBoom)
{
    BoomCore core(BoomConfig::large(), branchyLoop(3000));
    Trace trace =
        traceRun(core, TraceSpec::tmaBundle(core), 20'000'000);
    ASSERT_TRUE(core.done());
    TraceAnalyzer analyzer(trace);
    const RecoveryCdf cdf = analyzer.recoveryCdf();
    ASSERT_GT(cdf.sequences(), 100u);
    // Fig. 8b: almost every recovery lasts exactly the frontend
    // restart length (4 cycles).
    EXPECT_EQ(cdf.mode(), 4u);
    EXPECT_EQ(cdf.percentile(0.5), 4u);
    EXPECT_GE(cdf.max(), cdf.mode());
}

TEST(TraceAnalyzer, RecoveryCdfPercentiles)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    // Three runs: lengths 2, 2, 10.
    for (int bit : {1, 1, 0, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0})
        trace.append(static_cast<u64>(bit));
    TraceAnalyzer analyzer(trace);
    const RecoveryCdf cdf = analyzer.recoveryCdf();
    ASSERT_EQ(cdf.sequences(), 3u);
    EXPECT_EQ(cdf.mode(), 2u);
    EXPECT_EQ(cdf.percentile(0.0), 2u);
    EXPECT_EQ(cdf.percentile(1.0), 10u);
}

TEST(TraceAnalyzer, OverlapBoundIsSmallAndConsistent)
{
    BoomCore core(BoomConfig::large(),
                  workloads::icacheStress(64, 80, 3));
    Trace trace =
        traceRun(core, TraceSpec::tmaBundle(core), 20'000'000);
    ASSERT_TRUE(core.done());
    TraceAnalyzer analyzer(trace);
    const OverlapBound bound =
        analyzer.overlapUpperBound(core.coreWidth(), 50);
    EXPECT_EQ(bound.cycles, core.cycle());
    // Overlap slots are a subset of all fetch-bubble slots.
    EXPECT_LE(bound.overlapFraction, bound.frontendFraction + 1e-12);
    EXPECT_GE(bound.overlapFraction, 0.0);
    EXPECT_GE(bound.frontendPerturbation, 0.0);
}

TEST(TraceAnalyzer, OverlapDetectsConstructedOverlap)
{
    TraceSpec spec;
    spec.addLane(EventId::ICacheBlocked, 0);
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::FetchBubbles, 0);
    Trace trace(spec);
    // 300 idle cycles, then an overlap of refill+recovering with
    // bubbles inside.
    for (int c = 0; c < 300; c++)
        trace.append(0);
    for (int c = 0; c < 10; c++)
        trace.append(0b111); // blocked + recovering + bubble
    for (int c = 0; c < 300; c++)
        trace.append(0);
    TraceAnalyzer analyzer(trace);
    const OverlapBound bound = analyzer.overlapUpperBound(1, 50);
    EXPECT_EQ(bound.overlapSlots, 10u);
    EXPECT_GT(bound.overlapFraction, 0.0);
}

TEST(TraceAnalyzer, WindowTmaMatchesFullRunOnUniformWindow)
{
    BoomCore core(BoomConfig::large(), branchyLoop(2000));
    Trace trace =
        traceRun(core, TraceSpec::tmaBundle(core), 10'000'000);
    ASSERT_TRUE(core.done());
    TraceAnalyzer analyzer(trace);
    const TmaResult full =
        analyzer.windowTma(0, trace.numCycles(), core.coreWidth());
    // Compare against the out-of-band model fed by core totals.
    const TmaResult live = analyzeTma(core);
    EXPECT_NEAR(full.retiring, live.retiring, 1e-9);
    EXPECT_NEAR(full.frontend, live.frontend, 1e-9);
    EXPECT_NEAR(full.badSpeculation, live.badSpeculation, 1e-9);
}

// Boundary cases must be clean errors, not silent empty results: a
// TmaResult of all zeros from an empty window reads like a perfect
// (0% stall) run.
TEST(TraceAnalyzer, WindowTmaRejectsEmptyWindow)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    for (int c = 0; c < 100; c++)
        trace.append(0);
    TraceAnalyzer analyzer(trace);
    EXPECT_THROW(analyzer.windowTma(50, 50, 1), FatalError);
    EXPECT_THROW(analyzer.windowTma(60, 40, 1), FatalError);
}

TEST(TraceAnalyzer, WindowTmaRejectsWindowPastTraceEnd)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    for (int c = 0; c < 100; c++)
        trace.append(0);
    TraceAnalyzer analyzer(trace);
    try {
        analyzer.windowTma(100, 200, 1);
        FAIL() << "window starting at the trace end accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("ends at cycle"),
                  std::string::npos);
    }
    // A window that merely *extends* past the end is clamped.
    const TmaResult clamped = analyzer.windowTma(90, 10'000, 1);
    EXPECT_EQ(clamped.cycles, 10u);
}

TEST(TraceAnalyzer, WindowTmaRejectsZeroCycleTrace)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    TraceAnalyzer analyzer(trace);
    EXPECT_THROW(analyzer.windowTma(0, 1, 1), FatalError);
}

TEST(TraceAnalyzer, PlotValidatesWindowLikeWindowTma)
{
    RocketCore core(RocketConfig{}, branchyLoop(50));
    Trace trace =
        traceRun(core, TraceSpec::frontendBundle(), 1'000'000);
    TraceAnalyzer analyzer(trace);
    EXPECT_THROW(analyzer.plot(10, 10), FatalError);
    EXPECT_THROW(analyzer.plot(trace.numCycles() + 5,
                               trace.numCycles() + 80),
                 FatalError);
    // Clamped-but-nonempty windows still render.
    const std::string tail =
        analyzer.plot(trace.numCycles() - 5, trace.numCycles() + 80);
    EXPECT_NE(tail.find('|'), std::string::npos);

    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    Trace empty(spec);
    TraceAnalyzer empty_analyzer(empty);
    EXPECT_THROW(empty_analyzer.plot(0, 10), FatalError);
}

TEST(TraceAnalyzer, PlotRendersDots)
{
    RocketCore core(RocketConfig{}, branchyLoop(50));
    Trace trace =
        traceRun(core, TraceSpec::frontendBundle(), 1'000'000);
    TraceAnalyzer analyzer(trace);
    const std::string plot = analyzer.plot(0, 60);
    EXPECT_NE(plot.find("icache-miss"), std::string::npos);
    EXPECT_NE(plot.find("ibuf-ready"), std::string::npos);
    EXPECT_NE(plot.find('*'), std::string::npos);
}

// The §III motivating experiment: with a warm I-cache, mergesort
// shows fetch bubbles that no I$-miss explains.
TEST(TraceAnalyzer, MergesortFetchBubblesBeyondICacheMisses)
{
    RocketCore core(RocketConfig{}, workloads::mergesort());
    Trace trace =
        traceRun(core, TraceSpec::frontendBundle(), 50'000'000);
    ASSERT_TRUE(core.done());
    // Skip the cold-start half; in the warm region, count bubbles
    // outside I$-blocked windows.
    const u64 begin = trace.numCycles() / 2;
    u64 bubbles_without_icache = 0;
    for (u64 c = begin; c < trace.numCycles(); c++) {
        if (trace.high(c, EventId::FetchBubbles) &&
            !trace.high(c, EventId::ICacheBlocked) &&
            !trace.high(c, EventId::Recovering))
            bubbles_without_icache++;
    }
    EXPECT_GT(bubbles_without_icache, 0u)
        << "frontend stalls should not all be I$-attributable";
}

} // namespace
} // namespace icicle
