/**
 * @file
 * Event-coverage tests: every event Table I declares supported on a
 * core must actually fire under some committed workload — a guard
 * against silently dead event wiring.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

using namespace reg;

/** A kitchen-sink kernel exercising every pipeline corner. */
Program
kitchenSink()
{
    ProgramBuilder b("kitchen-sink");
    Label big = b.space(96 * 1024);   // misses + writebacks
    Label loop = b.newLabel(), skip = b.newLabel();
    b.la(s0, big);
    b.li(s1, 1500);
    b.li(s2, 0x5eed1);
    b.li(s3, 0);
    b.bind(loop);
    // xorshift + unpredictable branch (mispredicts, recovery)
    b.slli(t0, s2, 13);
    b.xor_(s2, s2, t0);
    b.srli(t0, s2, 7);
    b.xor_(s2, s2, t0);
    b.andi(t0, s2, 1);
    b.beqz(t0, skip);
    b.addi(s4, s4, 1);
    b.bind(skip);
    // strided stores + loads (D$ misses, releases, load-use)
    b.add(t1, s0, s3);
    b.sd(s2, t1, 0);
    b.ld(t2, t1, 0);
    b.add(s5, s5, t2);
    b.li(t3, 4096);
    b.add(s3, s3, t3);
    b.li(t3, 96 * 1024 - 4096);
    Label nowrap = b.newLabel();
    b.blt(s3, t3, nowrap);
    b.li(s3, 0);
    b.bind(nowrap);
    // long-latency arithmetic (interlocks)
    b.mul(t4, s2, s5);
    b.add(s6, s6, t4);
    b.andi(t5, s1, 127);
    Label no_div = b.newLabel();
    b.bnez(t5, no_div);
    b.ori(t5, s2, 1);
    b.div(t6, s5, t5);
    b.add(s6, s6, t6);
    b.fence();            // fence-retired, intended flush
    b.bind(no_div);
    b.addi(s1, s1, -1);
    Label finished = b.newLabel();
    b.beqz(s1, finished);
    b.j(loop); // a JAL: its first BTB miss raises cf-interlock
    b.bind(finished);
    b.li(a0, 0);
    b.halt();
    return b.build();
}

TEST(EventCoverage, RocketTableIEventsAllFire)
{
    RocketCore core(RocketConfig{}, kitchenSink());
    core.run(80'000'000);
    ASSERT_TRUE(core.done());

    // Events the kitchen sink cannot reach by design: TLBs default
    // off, atomics unsupported in RV64IM, replay unmodelled, machine
    // clears need OoO speculation, CSR interlock needs Zicsr code.
    const std::vector<EventId> exempt = {
        EventId::AtomicRetired, EventId::Exception,
        EventId::ITlbMiss,      EventId::DTlbMiss,
        EventId::L2TlbMiss,     EventId::Replay,
        EventId::Flush,         EventId::CsrInterlock,
        EventId::CtrlFlowTargetMispredict,
        EventId::DCacheBlockedDram, // L2-resident working set
        EventId::BranchResolved,    // BOOM-only signal
    };
    for (u32 e = 0; e < kNumEvents; e++) {
        const EventId id = static_cast<EventId>(e);
        const EventInfo info = eventInfo(CoreKind::Rocket, id);
        if (!info.supported)
            continue;
        bool exempted = false;
        for (EventId ex : exempt)
            exempted = exempted || ex == id;
        if (exempted)
            continue;
        EXPECT_GT(core.total(id), 0u)
            << "event never fired on Rocket: " << eventName(id);
    }
}

TEST(EventCoverage, BoomTableIEventsAllFire)
{
    BoomCore core(BoomConfig::large(), kitchenSink());
    core.run(80'000'000);
    ASSERT_TRUE(core.done());

    const std::vector<EventId> exempt = {
        EventId::ITlbMiss, EventId::DTlbMiss, EventId::L2TlbMiss,
        EventId::Flush, // machine clears need a store-load violation
        EventId::CtrlFlowTargetMispredict, // needs indirect jumps
    };
    for (u32 e = 0; e < kNumEvents; e++) {
        const EventId id = static_cast<EventId>(e);
        const EventInfo info = eventInfo(CoreKind::Boom, id);
        if (!info.supported)
            continue;
        bool exempted = false;
        for (EventId ex : exempt)
            exempted = exempted || ex == id;
        if (exempted)
            continue;
        EXPECT_GT(core.total(id), 0u)
            << "event never fired on BOOM: " << eventName(id);
    }
}

TEST(EventCoverage, RocketInstructionMixCountsAreConsistent)
{
    RocketCore core(RocketConfig{}, kitchenSink());
    core.run(80'000'000);
    ASSERT_TRUE(core.done());
    // The Basic-set class counters partition retired instructions.
    const u64 classified = core.total(EventId::LoadRetired) +
                           core.total(EventId::StoreRetired) +
                           core.total(EventId::ArithRetired) +
                           core.total(EventId::BranchRetired) +
                           core.total(EventId::SystemRetired) +
                           core.total(EventId::FenceRetired) +
                           core.total(EventId::AtomicRetired);
    EXPECT_EQ(classified, core.total(EventId::InstRetired));
}

TEST(EventCoverage, ExceptionFiresOnEcall)
{
    ProgramBuilder b("ecall");
    b.li(a0, 0);
    b.halt();
    BoomCore core(BoomConfig::small(), b.build());
    core.run(100000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.total(EventId::Exception), 1u);
}

TEST(EventCoverage, JalrTargetMispredictFires)
{
    // An indirect jump alternating between two targets defeats the
    // BTB: CF-target-mispredict must fire on both cores.
    ProgramBuilder b("jalrswap");
    Label f1 = b.newLabel(), f2 = b.newLabel(), top = b.newLabel();
    Label table = b.space(16);
    b.j(top);
    b.bind(f1);
    b.addi(s2, s2, 1);
    b.ret();
    b.bind(f2);
    b.addi(s2, s2, 2);
    b.ret();
    b.bind(top);
    // table[0]=f1, table[1]=f2 (addresses computed with la pairs)
    b.la(t0, table);
    b.la(t1, f1);
    b.sd(t1, t0, 0);
    b.la(t1, f2);
    b.sd(t1, t0, 8);
    b.li(s0, 400);
    Label loop = b.newLabel();
    b.bind(loop);
    b.andi(t2, s0, 1);
    b.slli(t2, t2, 3);
    b.add(t2, t0, t2);
    b.ld(t3, t2, 0);
    b.jalr(reg::ra, t3, 0); // indirect call, alternating target
    b.addi(s0, s0, -1);
    b.bnez(s0, loop);
    b.li(a0, 0);
    b.halt();

    RocketCore rocket(RocketConfig{}, b.build());
    rocket.run(1'000'000);
    ASSERT_TRUE(rocket.done());
    EXPECT_GT(rocket.total(EventId::CtrlFlowTargetMispredict), 100u);

    BoomCore boom(BoomConfig::large(), b.build());
    boom.run(1'000'000);
    ASSERT_TRUE(boom.done());
    EXPECT_GT(boom.total(EventId::CtrlFlowTargetMispredict), 100u);
}

} // namespace
} // namespace icicle
