/**
 * @file
 * Trace-file format tests: roundtrips across every bundle shape,
 * rejection of malformed headers (bad magic/version, truncation,
 * duplicate fields, out-of-range event ids and lanes — regression
 * tests for the readTrace decode-corruption bug), multi-lane analyzer
 * behaviour, and RecoveryCdf edge cases.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "common/logging.hh"
#include "isa/builder.hh"
#include "rocket/rocket.hh"
#include "trace/trace.hh"

namespace icicle
{
namespace
{

using namespace reg;

constexpr u32 kMagic = 0x49434c54; // "ICLT"

Program
tinyLoop()
{
    ProgramBuilder b("tiny");
    Label loop = b.newLabel();
    b.li(t2, 64);
    b.bind(loop);
    b.addi(t2, t2, -1);
    b.bnez(t2, loop);
    b.halt();
    return b.build();
}

/** Byte-level trace-file writer for forging malformed headers. */
class TraceForge
{
  public:
    explicit TraceForge(const std::string &path)
        : out(path, std::ios::binary)
    {}

    void
    put32(u32 v)
    {
        out.write(reinterpret_cast<const char *>(&v), 4);
    }

    void
    put64(u64 v)
    {
        out.write(reinterpret_cast<const char *>(&v), 8);
    }

    void
    header(u32 magic = kMagic, u32 version = 1)
    {
        put32(magic);
        put32(version);
    }

    void
    field(u32 event, u32 lane)
    {
        put32(event);
        put32(lane);
    }

    void close() { out.close(); }

  private:
    std::ofstream out;
};

class ScratchFile
{
  public:
    explicit ScratchFile(const char *name)
        : filePath(std::string("/tmp/icicle_fmt_") + name + ".bin")
    {}
    ~ScratchFile() { std::remove(filePath.c_str()); }
    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

// ---- roundtrips across bundle shapes --------------------------------

void
expectRoundTrip(const Trace &trace, const std::string &path)
{
    writeTrace(trace, path);
    const Trace loaded = readTrace(path);
    ASSERT_EQ(loaded.spec().numFields(), trace.spec().numFields());
    for (u32 f = 0; f < trace.spec().numFields(); f++) {
        EXPECT_EQ(loaded.spec().fields[f].event,
                  trace.spec().fields[f].event);
        EXPECT_EQ(loaded.spec().fields[f].lane,
                  trace.spec().fields[f].lane);
    }
    EXPECT_EQ(loaded.raw(), trace.raw());
}

TEST(TraceFormat, RoundTripFrontendBundle)
{
    ScratchFile file("frontend");
    RocketCore core(RocketConfig{}, tinyLoop());
    expectRoundTrip(
        traceRun(core, TraceSpec::frontendBundle(), 100'000),
        file.path());
}

TEST(TraceFormat, RoundTripRocketTmaBundle)
{
    ScratchFile file("rocket_tma");
    RocketCore core(RocketConfig{}, tinyLoop());
    expectRoundTrip(traceRun(core, TraceSpec::tmaBundle(core), 100'000),
                    file.path());
}

TEST(TraceFormat, RoundTripBoomTmaBundle)
{
    // The widest shipped bundle: multi-lane issue/retire/bubble
    // fields on a 3-wide core.
    ScratchFile file("boom_tma");
    BoomCore core(BoomConfig::large(), tinyLoop());
    expectRoundTrip(traceRun(core, TraceSpec::tmaBundle(core), 100'000),
                    file.path());
}

TEST(TraceFormat, RoundTripSingleFieldAndEmptyTrace)
{
    ScratchFile file("single");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    Trace trace(spec);
    expectRoundTrip(trace, file.path()); // zero cycles
    trace.append(1);
    trace.append(0);
    expectRoundTrip(trace, file.path());
}

TEST(TraceFormat, RoundTripMaxWidthBundle)
{
    // All 64 signal slots in use: every bit position must survive.
    ScratchFile file("wide");
    TraceSpec spec;
    for (u32 f = 0; f < 64; f++)
        spec.addLane(static_cast<EventId>(f % 8),
                     static_cast<u8>(f / 8));
    ASSERT_EQ(spec.numFields(), 64u);
    Trace trace(spec);
    trace.append(~0ull);
    trace.append(0x0123456789abcdefull);
    trace.append(1ull << 63);
    expectRoundTrip(trace, file.path());
}

// ---- malformed headers ----------------------------------------------

TEST(TraceFormat, RejectsBadMagic)
{
    ScratchFile file("bad_magic");
    TraceForge forge(file.path());
    forge.header(0xdeadbeef);
    forge.close();
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

TEST(TraceFormat, RejectsBadVersion)
{
    ScratchFile file("bad_version");
    TraceForge forge(file.path());
    forge.header(kMagic, 999);
    forge.close();
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

TEST(TraceFormat, RejectsTruncatedHeader)
{
    // File ends mid-field-table.
    ScratchFile file("trunc_header");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(3); // three fields promised
    forge.field(0, 0);
    forge.close(); // ...but only one provided
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

TEST(TraceFormat, RejectsTruncatedPayload)
{
    ScratchFile file("trunc_payload");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(1);
    forge.field(0, 0);
    forge.put64(10); // ten cycles promised
    forge.put64(1);
    forge.put64(0); // ...only two written
    forge.close();
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

// ---- payload CRC (format version 2) ---------------------------------

namespace
{

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
dumpFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(TraceFormat, DetectsFlippedPayloadByte)
{
    ScratchFile file("crc_flip");
    RocketCore core(RocketConfig{}, tinyLoop());
    writeTrace(traceRun(core, TraceSpec::frontendBundle(), 100'000),
               file.path());
    std::string bytes = slurpFile(file.path());
    // Flip one bit in the middle of the cycle records (well past the
    // 12-byte header + 6 x 8-byte field table + 8-byte count).
    bytes[bytes.size() / 2] ^= 0x10;
    dumpFile(file.path(), bytes);
    try {
        readTrace(file.path());
        FAIL() << "corrupt payload accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("CRC mismatch"),
                  std::string::npos);
    }
}

TEST(TraceFormat, TruncationReportsExpectedVsActualCycles)
{
    ScratchFile file("crc_trunc");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    Trace trace(spec);
    for (int c = 0; c < 10; c++)
        trace.append(1);
    writeTrace(trace, file.path());
    std::string bytes = slurpFile(file.path());
    // Drop the CRC trailer and the last three cycle records.
    dumpFile(file.path(), bytes.substr(0, bytes.size() - 4 - 3 * 8));
    try {
        readTrace(file.path());
        FAIL() << "truncated payload accepted";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("promises 10 cycles"), std::string::npos)
            << what;
        EXPECT_NE(what.find("only 7"), std::string::npos) << what;
    }
}

TEST(TraceFormat, MissingCrcTrailerIsTruncation)
{
    ScratchFile file("crc_missing");
    TraceSpec spec;
    spec.addLane(EventId::Cycles, 0);
    Trace trace(spec);
    trace.append(1);
    writeTrace(trace, file.path());
    std::string bytes = slurpFile(file.path());
    dumpFile(file.path(), bytes.substr(0, bytes.size() - 4));
    try {
        readTrace(file.path());
        FAIL() << "missing CRC trailer accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("CRC trailer"),
                  std::string::npos);
    }
}

TEST(TraceFormat, AcceptsVersion1FilesWithoutCrc)
{
    // Pre-CRC files (version 1) must stay readable.
    ScratchFile file("v1_legacy");
    TraceForge forge(file.path());
    forge.header(kMagic, 1);
    forge.put32(1);
    forge.field(static_cast<u32>(EventId::Recovering), 0);
    forge.put64(3);
    forge.put64(1);
    forge.put64(0);
    forge.put64(1);
    forge.close();
    const Trace trace = readTrace(file.path());
    EXPECT_EQ(trace.numCycles(), 3u);
    EXPECT_EQ(trace.count(EventId::Recovering), 2u);
}

// Regression: a duplicate (event, lane) pair used to be silently
// deduplicated through TraceSpec::addLane, shifting the bit index of
// every subsequent field so all later signals decoded from the wrong
// bit. It must be rejected outright.
TEST(TraceFormat, RejectsDuplicateField)
{
    ScratchFile file("dup_field");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(3);
    forge.field(static_cast<u32>(EventId::Recovering), 0);
    forge.field(static_cast<u32>(EventId::Recovering), 0); // dup
    forge.field(static_cast<u32>(EventId::FetchBubbles), 0);
    forge.put64(1);
    forge.put64(0b100); // would land on the wrong field if deduped
    forge.close();
    try {
        readTrace(file.path());
        FAIL() << "duplicate field accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("duplicates"),
                  std::string::npos);
    }
}

TEST(TraceFormat, RejectsOutOfRangeEventId)
{
    ScratchFile file("bad_event");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(1);
    forge.field(kNumEvents + 7, 0);
    forge.put64(0);
    forge.close();
    try {
        readTrace(file.path());
        FAIL() << "out-of-range event id accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("out-of-range event"),
                  std::string::npos);
    }
}

TEST(TraceFormat, RejectsOutOfRangeLane)
{
    ScratchFile file("bad_lane");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(1);
    forge.field(static_cast<u32>(EventId::Cycles), kMaxSources);
    forge.put64(0);
    forge.close();
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

TEST(TraceFormat, RejectsOversizedFieldCount)
{
    ScratchFile file("too_many");
    TraceForge forge(file.path());
    forge.header();
    forge.put32(65);
    forge.close();
    EXPECT_THROW(readTrace(file.path()), FatalError);
}

// ---- multi-lane analyzer regression tests ---------------------------

// Regression: recoveryCdf()/overlapUpperBound() only looked at lane 0
// of Recovering / ICacheBlocked; activity on other lanes of a
// multi-lane bundle was silently dropped.
TEST(TraceFormat, RecoveryCdfSeesNonZeroLanes)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::Recovering, 1);
    Trace trace(spec);
    // One 3-cycle recovery asserted only on lane 1.
    for (u64 word : {0ull, 0b10ull, 0b10ull, 0b10ull, 0ull})
        trace.append(word);
    TraceAnalyzer analyzer(trace);
    const RecoveryCdf cdf = analyzer.recoveryCdf();
    ASSERT_EQ(cdf.sequences(), 1u);
    EXPECT_EQ(cdf.lengths[0], 3u);
}

TEST(TraceFormat, RecoveryCdfMergesOverlappingLanes)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::Recovering, 1);
    Trace trace(spec);
    // Lane 0 high cycles 1-2, lane 1 high cycles 2-4: one merged run
    // of length 4, not two separate runs.
    for (u64 word : {0ull, 0b01ull, 0b11ull, 0b10ull, 0b10ull, 0ull})
        trace.append(word);
    TraceAnalyzer analyzer(trace);
    const RecoveryCdf cdf = analyzer.recoveryCdf();
    ASSERT_EQ(cdf.sequences(), 1u);
    EXPECT_EQ(cdf.lengths[0], 4u);
}

TEST(TraceFormat, OverlapBoundCountsNonZeroLaneActivity)
{
    TraceSpec spec;
    spec.addLane(EventId::ICacheBlocked, 0);
    spec.addLane(EventId::ICacheBlocked, 1); // refill on lane 1 only
    spec.addLane(EventId::Recovering, 1);    // recovery on lane 1 only
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::FetchBubbles, 1);
    Trace trace(spec);
    for (int c = 0; c < 200; c++)
        trace.append(0);
    // 8 cycles: refill(lane1) + recovering(lane1) + both bubble lanes.
    for (int c = 0; c < 8; c++)
        trace.append(0b11110);
    for (int c = 0; c < 200; c++)
        trace.append(0);
    TraceAnalyzer analyzer(trace);
    const OverlapBound bound = analyzer.overlapUpperBound(2, 50);
    // Both bubble lanes in all 8 overlap cycles.
    EXPECT_EQ(bound.overlapSlots, 16u);
    EXPECT_GT(bound.badSpecFraction, 0.0);
}

TEST(TraceFormat, CountAllLanesMatchesPerLaneSum)
{
    TraceSpec spec;
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::FetchBubbles, 1);
    spec.addLane(EventId::FetchBubbles, 2);
    spec.addLane(EventId::Recovering, 0);
    Trace trace(spec);
    for (u64 word : {0b0001ull, 0b0111ull, 0b1101ull, 0b0000ull})
        trace.append(word);
    u64 per_lane = 0;
    for (u8 lane = 0; lane < 3; lane++)
        per_lane += trace.count(EventId::FetchBubbles, lane);
    EXPECT_EQ(trace.countAllLanes(EventId::FetchBubbles), per_lane);
    EXPECT_EQ(trace.countAllLanes(EventId::FetchBubbles), 6u);
    EXPECT_EQ(trace.countAllLanes(EventId::Cycles), 0u);
}

TEST(TraceFormat, FieldMaskCoversExactlyTheEventsLanes)
{
    TraceSpec spec;
    spec.addLane(EventId::Recovering, 0);
    spec.addLane(EventId::FetchBubbles, 0);
    spec.addLane(EventId::Recovering, 2);
    EXPECT_EQ(spec.fieldMask(EventId::Recovering), 0b101ull);
    EXPECT_EQ(spec.fieldMask(EventId::FetchBubbles), 0b010ull);
    EXPECT_EQ(spec.fieldMask(EventId::Cycles), 0ull);
}

// ---- RecoveryCdf edge cases -----------------------------------------

TEST(RecoveryCdfEdge, EmptyDistribution)
{
    RecoveryCdf cdf;
    EXPECT_EQ(cdf.sequences(), 0u);
    EXPECT_EQ(cdf.percentile(0.0), 0u);
    EXPECT_EQ(cdf.percentile(0.5), 0u);
    EXPECT_EQ(cdf.percentile(1.0), 0u);
    EXPECT_EQ(cdf.mode(), 0u);
    EXPECT_EQ(cdf.max(), 0u);
}

TEST(RecoveryCdfEdge, SingleElement)
{
    RecoveryCdf cdf;
    cdf.lengths = {7};
    EXPECT_EQ(cdf.sequences(), 1u);
    EXPECT_EQ(cdf.percentile(0.0), 7u);
    EXPECT_EQ(cdf.percentile(0.5), 7u);
    EXPECT_EQ(cdf.percentile(1.0), 7u);
    EXPECT_EQ(cdf.mode(), 7u);
    EXPECT_EQ(cdf.max(), 7u);
}

TEST(RecoveryCdfEdge, PercentileClampsFractionAboveOne)
{
    RecoveryCdf cdf;
    cdf.lengths = {1, 2, 3};
    EXPECT_EQ(cdf.percentile(1.5), 3u);
}

} // namespace
} // namespace icicle
