/**
 * @file
 * Boundary coverage for DistributedCounter::corrected() against exact
 * Scalar counts at the undercount boundary: localWidth in {1, 2, 4},
 * adversarial burst patterns engineered to saturate the rotating
 * one-hot arbiter, and verification of the end-of-run undercount
 * bound sources x 2^localWidth from §IV-B.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pmu/counters.hh"
#include "pmu/event.hh"

using namespace icicle;

namespace
{

constexpr EventId kEvent = EventId::UopsIssued;

/** Drive both counters with the same cycle pattern; return exact. */
u64
drivePattern(ScalarCounter &scalar, DistributedCounter &distributed,
             EventBus &bus, u32 sources, u64 cycles,
             const std::function<u16(u64)> &mask_of_cycle)
{
    u64 exact = 0;
    for (u64 cycle = 0; cycle < cycles; cycle++) {
        bus.clear();
        const u16 mask =
            mask_of_cycle(cycle) & static_cast<u16>((1u << sources) - 1);
        for (u32 s = 0; s < sources; s++) {
            if (mask & (1u << s)) {
                bus.raise(kEvent, s);
                exact++;
            }
        }
        scalar.tick(bus);
        distributed.tick(bus);
    }
    return exact;
}

struct BoundaryCase
{
    u32 sources;
    u32 localWidth;
    /** Can a saturating burst lose overflow bits (2^w < sources)? */
    bool
    lossy() const
    {
        return (1u << localWidth) < sources;
    }
};

const BoundaryCase kCases[] = {
    // localWidth 1: boundary-safe only up to 2 sources.
    {1, 1}, {2, 1}, {4, 1}, {8, 1},
    // localWidth 2: safe up to 4 sources.
    {2, 2}, {4, 2}, {8, 2},
    // localWidth 4: safe for every shipped geometry (<= 16 sources).
    {4, 4}, {9, 4}, {16, 4},
};

} // namespace

TEST(DistributedBoundary, SaturatingBurstMatchesScalarWhenSized)
{
    // All sources firing every cycle is the worst case for the
    // arbiter: each local counter wraps as fast as possible while the
    // one-hot select visits it only every `sources` cycles.
    for (const BoundaryCase &c : kCases) {
        EventBus bus;
        bus.setNumSources(kEvent, c.sources);
        ScalarCounter scalar(kEvent, c.sources);
        DistributedCounter distributed(kEvent, c.sources, c.localWidth);

        const u64 exact = drivePattern(
            scalar, distributed, bus, c.sources, 10000,
            [](u64) { return 0xffff; });
        ASSERT_EQ(scalar.read(), exact);

        if (c.lossy()) {
            // Overflow latches saturate: events are lost, not
            // deferred, and even corrected() cannot recover them.
            EXPECT_LT(distributed.corrected(), exact)
                << c.sources << " sources, width " << c.localWidth;
        } else {
            EXPECT_EQ(distributed.corrected(), exact)
                << c.sources << " sources, width " << c.localWidth;
            // The raw principal counter undercounts by at most the
            // local residues (sources x 2^localWidth, §IV-B) plus
            // the transient occupancy of undrained overflow latches
            // (< one wrap each).
            const u64 raw =
                distributed.read() * (1ull << c.localWidth);
            EXPECT_LE(exact - raw, 2 * distributed.undercountBound())
                << c.sources << " sources, width " << c.localWidth;
        }
    }
}

TEST(DistributedBoundary, PhasedBurstsTargetTheArbiterRotation)
{
    // Adversarial phasing: fire a source only on the cycles right
    // after the arbiter has passed it, maximizing latch residency.
    for (const BoundaryCase &c : kCases) {
        if (c.lossy())
            continue;
        EventBus bus;
        bus.setNumSources(kEvent, c.sources);
        ScalarCounter scalar(kEvent, c.sources);
        DistributedCounter distributed(kEvent, c.sources, c.localWidth);

        const u32 sources = c.sources;
        const u64 exact = drivePattern(
            scalar, distributed, bus, sources, 20000,
            [sources](u64 cycle) {
                // Source s fires except when the arbiter is one cycle
                // away from selecting it.
                u16 mask = 0;
                for (u32 s = 0; s < sources; s++) {
                    if ((cycle + 1) % sources != s)
                        mask |= static_cast<u16>(1u << s);
                }
                return mask;
            });
        EXPECT_EQ(distributed.corrected(), exact)
            << c.sources << " sources, width " << c.localWidth;
    }
}

TEST(DistributedBoundary, AlternatingBurstsAndSilence)
{
    // Bursts of exactly 2^localWidth - 1 events leave a local counter
    // one below wrap; the next burst's first event wraps it. This
    // walks the counter across the wrap boundary repeatedly.
    for (const BoundaryCase &c : kCases) {
        if (c.lossy())
            continue;
        EventBus bus;
        bus.setNumSources(kEvent, c.sources);
        ScalarCounter scalar(kEvent, c.sources);
        DistributedCounter distributed(kEvent, c.sources, c.localWidth);

        const u64 burst = (1ull << c.localWidth) - 1;
        const u64 exact = drivePattern(
            scalar, distributed, bus, c.sources, 8192,
            [burst](u64 cycle) {
                const u64 phase = cycle % (2 * burst + 2);
                return phase < burst + 1 ? 0xffff : 0;
            });
        EXPECT_EQ(distributed.corrected(), exact)
            << c.sources << " sources, width " << c.localWidth;
    }
}

TEST(DistributedBoundary, ResidueDecomposition)
{
    // corrected() must always equal principal * 2^w + residue, and
    // residue must stay below the undercount bound.
    EventBus bus;
    const u32 sources = 4;
    bus.setNumSources(kEvent, sources);
    DistributedCounter counter(kEvent, sources, 2);
    for (u64 cycle = 0; cycle < 5000; cycle++) {
        bus.clear();
        bus.raiseLanes(kEvent, 1 + cycle % sources);
        counter.tick(bus);
        ASSERT_EQ(counter.corrected(),
                  counter.read() * 4 + counter.residue());
        // Residue = local values (< wrap each) plus undrained latches
        // (wrap each), so it stays below twice the paper bound.
        ASSERT_LT(counter.residue(), 2 * counter.undercountBound());
    }
}

TEST(DistributedBoundary, StepMaskEquivalentToBusTick)
{
    // The prover drives counters through step(mask) instead of a full
    // EventBus tick; the two paths must be indistinguishable. Replay
    // identical random bursts through both and compare corrected()
    // every cycle.
    u64 rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (u32 width : {1u, 2u, 4u}) {
        const u32 sources = 4;
        EventBus bus;
        bus.setNumSources(kEvent, sources);
        DistributedCounter via_bus(kEvent, sources, width);
        DistributedCounter via_step(kEvent, sources, width);
        for (u64 cycle = 0; cycle < 20000; cycle++) {
            const u16 mask =
                static_cast<u16>(next() & ((1u << sources) - 1));
            bus.clear();
            for (u32 s = 0; s < sources; s++) {
                if (mask & (1u << s))
                    bus.raise(kEvent, s);
            }
            via_bus.tick(bus);
            via_step.step(mask);
            ASSERT_EQ(via_bus.corrected(), via_step.corrected())
                << "width " << width << " cycle " << cycle;
        }
        ASSERT_EQ(via_bus.snapshot(), via_step.snapshot())
            << "width " << width;
    }
}

TEST(DistributedBoundary, SnapshotRestoreRoundTripMatchesLiveRun)
{
    // Snapshot/restore is the prover's state hook: freezing a counter
    // mid-burst, restoring into a fresh instance, and continuing the
    // same schedule must be byte-for-byte equivalent to never having
    // stopped — for every width and at every split point.
    u64 rng = 0xdeadbeefcafef00dull;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (u32 width : {1u, 2u, 4u}) {
        const u32 sources = 4;
        const u64 cycles = 4096;
        std::vector<u16> schedule(cycles);
        for (u64 c = 0; c < cycles; c++)
            schedule[c] =
                static_cast<u16>(next() & ((1u << sources) - 1));

        DistributedCounter live(kEvent, sources, width);
        for (u64 c = 0; c < cycles; c++)
            live.step(schedule[c]);

        for (u64 split : {u64{1}, u64{7}, u64{1000}, cycles - 1}) {
            DistributedCounter first(kEvent, sources, width);
            for (u64 c = 0; c < split; c++)
                first.step(schedule[c]);
            const DistributedCounterState state = first.snapshot();

            DistributedCounter resumed(kEvent, sources, width);
            resumed.restore(state);
            for (u64 c = split; c < cycles; c++)
                resumed.step(schedule[c]);

            ASSERT_EQ(resumed.corrected(), live.corrected())
                << "width " << width << " split " << split;
            ASSERT_EQ(resumed.snapshot(), live.snapshot())
                << "width " << width << " split " << split;
        }
    }
}

TEST(DistributedBoundary, SingleSourceDegenerateCase)
{
    // sources = 1: the arbiter has one slot; no undercount beyond the
    // local residue is possible at any width.
    for (u32 width : {1u, 2u, 4u}) {
        EventBus bus;
        bus.setNumSources(kEvent, 1);
        ScalarCounter scalar(kEvent, 1);
        DistributedCounter distributed(kEvent, 1, width);
        const u64 exact =
            drivePattern(scalar, distributed, bus, 1, 3000,
                         [](u64 cycle) {
                             return cycle % 3 ? 0x1 : 0x0;
                         });
        EXPECT_EQ(distributed.corrected(), exact) << "width " << width;
    }
}
