/**
 * @file
 * Unit tests for the ISA layer: encode/decode round-trips, the
 * program builder, and the functional executor (riscv-tests style).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/builder.hh"
#include "isa/encoding.hh"
#include "isa/executor.hh"

namespace icicle
{
namespace
{

using namespace reg;

// ---------------------------------------------------------- encoding

TEST(Encoding, RoundTripRType)
{
    for (Op op : {Op::Add, Op::Sub, Op::Sll, Op::Slt, Op::Sltu, Op::Xor,
                  Op::Srl, Op::Sra, Op::Or, Op::And, Op::Addw, Op::Subw,
                  Op::Sllw, Op::Srlw, Op::Sraw, Op::Mul, Op::Mulh,
                  Op::Mulhsu, Op::Mulhu, Op::Div, Op::Divu, Op::Rem,
                  Op::Remu, Op::Mulw, Op::Divw, Op::Divuw, Op::Remw,
                  Op::Remuw}) {
        DecodedInst inst;
        inst.op = op;
        inst.rd = 5;
        inst.rs1 = 6;
        inst.rs2 = 7;
        EXPECT_EQ(decode(encode(inst)), inst) << opName(op);
    }
}

TEST(Encoding, RoundTripIType)
{
    for (Op op : {Op::Addi, Op::Slti, Op::Sltiu, Op::Xori, Op::Ori,
                  Op::Andi, Op::Addiw, Op::Jalr, Op::Lb, Op::Lh, Op::Lw,
                  Op::Ld, Op::Lbu, Op::Lhu, Op::Lwu}) {
        for (i64 imm : {-2048ll, -1ll, 0ll, 1ll, 2047ll}) {
            DecodedInst inst;
            inst.op = op;
            inst.rd = 10;
            inst.rs1 = 11;
            inst.imm = imm;
            EXPECT_EQ(decode(encode(inst)), inst)
                << opName(op) << " imm=" << imm;
        }
    }
}

TEST(Encoding, RoundTripShifts)
{
    for (Op op : {Op::Slli, Op::Srli, Op::Srai}) {
        for (i64 shamt : {0ll, 1ll, 31ll, 63ll}) {
            DecodedInst inst;
            inst.op = op;
            inst.rd = 3;
            inst.rs1 = 4;
            inst.imm = shamt;
            EXPECT_EQ(decode(encode(inst)), inst);
        }
    }
    for (Op op : {Op::Slliw, Op::Srliw, Op::Sraiw}) {
        DecodedInst inst;
        inst.op = op;
        inst.rd = 3;
        inst.rs1 = 4;
        inst.imm = 17;
        EXPECT_EQ(decode(encode(inst)), inst);
    }
}

TEST(Encoding, RoundTripStoresAndBranches)
{
    for (Op op : {Op::Sb, Op::Sh, Op::Sw, Op::Sd}) {
        DecodedInst inst;
        inst.op = op;
        inst.rs1 = 8;
        inst.rs2 = 9;
        inst.imm = -128;
        EXPECT_EQ(decode(encode(inst)), inst);
    }
    for (Op op : {Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu,
                  Op::Bgeu}) {
        for (i64 imm : {-4096ll, -2ll, 0ll, 2ll, 4094ll}) {
            DecodedInst inst;
            inst.op = op;
            inst.rs1 = 8;
            inst.rs2 = 9;
            inst.imm = imm;
            EXPECT_EQ(decode(encode(inst)), inst);
        }
    }
}

TEST(Encoding, RoundTripUJAndSystem)
{
    for (Op op : {Op::Lui, Op::Auipc}) {
        DecodedInst inst;
        inst.op = op;
        inst.rd = 15;
        inst.imm = 0x12345000;
        EXPECT_EQ(decode(encode(inst)), inst);
    }
    {
        DecodedInst inst;
        inst.op = Op::Jal;
        inst.rd = 1;
        inst.imm = -1048576;
        EXPECT_EQ(decode(encode(inst)), inst);
        inst.imm = 1048574;
        EXPECT_EQ(decode(encode(inst)), inst);
    }
    EXPECT_EQ(decode(encode(DecodedInst{Op::Ecall})).op, Op::Ecall);
    EXPECT_EQ(decode(encode(DecodedInst{Op::Ebreak})).op, Op::Ebreak);
    EXPECT_EQ(decode(encode(DecodedInst{Op::Fence})).op, Op::Fence);
    EXPECT_EQ(decode(encode(DecodedInst{Op::FenceI})).op, Op::FenceI);
}

TEST(Encoding, RoundTripCsr)
{
    for (Op op : {Op::Csrrw, Op::Csrrs, Op::Csrrc}) {
        DecodedInst inst;
        inst.op = op;
        inst.rd = 10;
        inst.rs1 = 11;
        inst.imm = 0xB00;
        EXPECT_EQ(decode(encode(inst)), inst);
    }
}

TEST(Encoding, KnownEncodings)
{
    // Cross-checked against the RISC-V spec: addi x1, x2, 3.
    DecodedInst inst;
    inst.op = Op::Addi;
    inst.rd = 1;
    inst.rs1 = 2;
    inst.imm = 3;
    EXPECT_EQ(encode(inst), 0x00310093u);
    // add x3, x4, x5
    inst = DecodedInst{};
    inst.op = Op::Add;
    inst.rd = 3;
    inst.rs1 = 4;
    inst.rs2 = 5;
    EXPECT_EQ(encode(inst), 0x005201b3u);
    // ecall
    EXPECT_EQ(encode(DecodedInst{Op::Ecall}), 0x00000073u);
}

TEST(Encoding, IllegalDecodes)
{
    EXPECT_EQ(decode(0x00000000u).op, Op::Illegal);
    EXPECT_EQ(decode(0xffffffffu).op, Op::Illegal);
}

// ----------------------------------------------------------- builder

TEST(Builder, ForwardAndBackwardBranches)
{
    ProgramBuilder b("branches");
    Label loop = b.newLabel();
    Label done = b.newLabel();
    b.li(a0, 0);
    b.li(t0, 10);
    b.bind(loop);
    b.addi(a0, a0, 1);
    b.blt(a0, t0, loop);
    b.beq(a0, t0, done);
    b.li(a0, 99); // skipped
    b.bind(done);
    b.halt();

    Executor exec(b.build());
    exec.run();
    EXPECT_TRUE(exec.halted());
    EXPECT_EQ(exec.exitCode(), 10u);
}

TEST(Builder, LiCoversFullRange)
{
    const i64 values[] = {0, 1, -1, 2047, -2048, 2048, 123456,
                          -123456, 0x7fffffffll, -0x80000000ll,
                          0x123456789abcdefll, -0x123456789abcdefll,
                          INT64_MAX, INT64_MIN};
    for (i64 value : values) {
        ProgramBuilder b("li");
        b.li(a0, value);
        b.halt();
        Executor exec(b.build());
        exec.run();
        EXPECT_EQ(exec.exitCode(), static_cast<u64>(value))
            << "value=" << value;
    }
}

TEST(Builder, DataSectionAndLa)
{
    ProgramBuilder b("data");
    Label table = b.dwords({7, 11, 13});
    b.la(a1, table);
    b.ld(a0, a1, 8);
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.exitCode(), 11u);
}

TEST(Builder, LaOnCodeLabel)
{
    // Regression: code labels store instruction indices, which the
    // la fixup must scale to byte addresses.
    ProgramBuilder b("lacode");
    Label func = b.newLabel();
    Label main = b.newLabel();
    b.j(main);
    b.bind(func);
    b.li(a0, 55);
    b.ret();
    b.bind(main);
    b.la(t0, func);
    b.jalr(reg::ra, t0, 0); // indirect call through the la address
    b.halt();
    Executor exec(b.build());
    exec.run(10000);
    ASSERT_TRUE(exec.halted());
    EXPECT_EQ(exec.exitCode(), 55u);
}

TEST(Builder, CallRet)
{
    ProgramBuilder b("call");
    Label func = b.newLabel();
    Label main = b.newLabel();
    b.j(main);
    b.bind(func);
    b.addi(a0, a0, 5);
    b.ret();
    b.bind(main);
    b.li(a0, 1);
    b.call(func);
    b.call(func);
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.exitCode(), 11u);
}

// ---------------------------------------------------------- executor

TEST(Executor, ArithmeticSemantics)
{
    ProgramBuilder b("arith");
    b.li(t0, -7);
    b.li(t1, 3);
    b.div(a0, t0, t1);   // -2
    b.rem(a1, t0, t1);   // -1
    b.mul(a2, t0, t1);   // -21
    b.slli(a3, t1, 62);
    b.srai(a4, a3, 62);  // 3 -> shifted back: -1 (0b11 at top)
    b.add(a0, a0, a1);   // -3
    b.add(a0, a0, a2);   // -24
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(static_cast<i64>(exec.reg(reg::a0)), -24);
    EXPECT_EQ(static_cast<i64>(exec.reg(reg::a4)), -1);
}

TEST(Executor, MulhVariants)
{
    ProgramBuilder b("mulh");
    b.li(t0, -1);          // 0xfff...f
    b.li(t1, 2);
    b.mulh(a0, t0, t1);    // signed high: -1 * 2 -> high = -1
    b.mulhu(a1, t0, t1);   // unsigned high: (2^64-1)*2 -> high = 1
    b.li(t2, 0x100000000ll);
    b.mulhu(a2, t2, t2);   // 2^32 * 2^32 -> high = 1
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(static_cast<i64>(exec.reg(a0)), -1);
    EXPECT_EQ(exec.reg(a1), 1u);
    EXPECT_EQ(exec.reg(a2), 1u);
}

TEST(Executor, Word32Variants)
{
    ProgramBuilder b("w32");
    b.li(t0, 0x100000007ll); // truncates to 7 in W ops
    b.li(t1, 3);
    b.divw(a0, t0, t1);  // 7/3 = 2
    b.remw(a1, t0, t1);  // 1
    b.mulw(a2, t0, t1);  // 21
    b.subw(a3, t1, t0);  // 3-7 = -4 sign-extended
    b.sllw(a4, t1, t1);  // 3<<3 = 24
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.reg(a0), 2u);
    EXPECT_EQ(exec.reg(a1), 1u);
    EXPECT_EQ(exec.reg(a2), 21u);
    EXPECT_EQ(static_cast<i64>(exec.reg(a3)), -4);
    EXPECT_EQ(exec.reg(a4), 24u);
}

TEST(Executor, JalrClearsLowBit)
{
    ProgramBuilder b("jalrlow");
    Label target = b.newLabel();
    Label main = b.newLabel();
    b.j(main);
    b.bind(target);
    b.li(a0, 9);
    b.halt();
    b.bind(main);
    b.la(t0, target);
    b.addi(t0, t0, 1);     // misaligned by one; jalr must mask it
    b.jalr(zero, t0, 0);
    Executor exec(b.build());
    exec.run(1000);
    ASSERT_TRUE(exec.halted());
    EXPECT_EQ(exec.exitCode(), 9u);
}

TEST(Executor, OutOfBoundsAccessIsFatal)
{
    ProgramBuilder b("oob");
    b.li(t0, -8);
    b.ld(t1, t0, 0); // address ~2^64: out of the flat memory
    b.halt();
    Executor exec(b.build());
    EXPECT_THROW(exec.run(10), FatalError);
}

TEST(Executor, DivisionEdgeCases)
{
    ProgramBuilder b("divedge");
    b.li(t0, 5);
    b.li(t1, 0);
    b.div(a0, t0, t1);  // div by zero -> -1
    b.rem(a1, t0, t1);  // rem by zero -> rs1
    b.li(t2, INT64_MIN);
    b.li(t3, -1);
    b.div(a2, t2, t3);  // overflow -> INT64_MIN
    b.rem(a3, t2, t3);  // overflow -> 0
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.reg(a0), ~0ull);
    EXPECT_EQ(exec.reg(a1), 5ull);
    EXPECT_EQ(exec.reg(a2), static_cast<u64>(INT64_MIN));
    EXPECT_EQ(exec.reg(a3), 0ull);
}

TEST(Executor, LoadStoreWidths)
{
    ProgramBuilder b("ldst");
    Label buf = b.space(64);
    b.la(t0, buf);
    b.li(t1, -2);                 // 0xfff...fe
    b.sd(t1, t0, 0);
    b.lbu(a0, t0, 0);             // 0xfe
    b.lb(a1, t0, 0);              // -2
    b.lhu(a2, t0, 0);             // 0xfffe
    b.lwu(a3, t0, 0);             // 0xfffffffe
    b.lw(a4, t0, 0);              // -2
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.reg(a0), 0xfeull);
    EXPECT_EQ(static_cast<i64>(exec.reg(a1)), -2);
    EXPECT_EQ(exec.reg(a2), 0xfffeull);
    EXPECT_EQ(exec.reg(a3), 0xfffffffeull);
    EXPECT_EQ(static_cast<i64>(exec.reg(a4)), -2);
}

TEST(Executor, X0IsHardwiredZero)
{
    ProgramBuilder b("x0");
    b.addi(zero, zero, 5);
    b.mv(a0, zero);
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.exitCode(), 0u);
}

TEST(Executor, WordOpsSignExtend)
{
    ProgramBuilder b("wordops");
    b.li(t0, 0x7fffffff);
    b.addiw(a0, t0, 1);   // -> 0x80000000 sign-extended
    b.halt();
    Executor exec(b.build());
    exec.run();
    EXPECT_EQ(exec.reg(a0), 0xffffffff80000000ull);
}

TEST(Executor, StepReportsBranchAndMemInfo)
{
    ProgramBuilder b("stepinfo");
    Label target = b.newLabel();
    Label buf = b.space(8);
    b.li(t0, 1);
    b.bnez(t0, target);
    b.nop();
    b.bind(target);
    b.la(t1, buf);
    b.sd(t0, t1, 0);
    b.halt();
    Executor exec(b.build());

    Retired r = exec.step(); // li
    r = exec.step();         // bnez
    EXPECT_TRUE(r.isBranch());
    EXPECT_TRUE(r.taken);
    EXPECT_NE(r.nextPc, r.pc + 4);
    r = exec.step();         // la (lui)
    r = exec.step();         // la (addi)
    r = exec.step();         // sd
    EXPECT_TRUE(r.isStore());
    EXPECT_EQ(r.memSize, 8);
    EXPECT_EQ(exec.loadMem(r.memAddr, 8), 1u);
}

} // namespace
} // namespace icicle
