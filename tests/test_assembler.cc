/**
 * @file
 * Assembler tests: text programs must assemble, execute, and agree
 * with builder-constructed equivalents; syntax errors must be
 * reported with line numbers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "rocket/rocket.hh"

namespace icicle
{
namespace
{

TEST(Assembler, CountdownLoop)
{
    const Program program = assemble(R"(
        # count down from 10, return 42
        li   t0, 10
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li   a0, 42
        ecall
    )");
    Executor exec(program);
    exec.run();
    ASSERT_TRUE(exec.halted());
    EXPECT_EQ(exec.exitCode(), 42u);
}

TEST(Assembler, DataSectionAndLoads)
{
    const Program program = assemble(R"(
        .data
    table:  .dword 7, 11, 13
    buf:    .space 16
        .text
    main:
        la   a1, table
        ld   a0, 8(a1)       # 11
        la   a2, buf
        sd   a0, 0(a2)
        ld   a0, 0(a2)
        ecall
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 11u);
}

TEST(Assembler, CallRetAndPseudos)
{
    const Program program = assemble(R"(
        j    main
    double:                  // doubles a0
        add  a0, a0, a0
        ret
    main:
        li   a0, 3
        call double
        call double
        mv   a1, a0
        snez a2, a1          # 1
        add  a0, a1, a2      # 13
        ecall
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 13u);
}

TEST(Assembler, AllBranchForms)
{
    const Program program = assemble(R"(
        li t0, 5
        li t1, 9
        li a0, 0
        blt  t0, t1, l1
        ecall
    l1: bge  t1, t0, l2
        ecall
    l2: bltu t0, t1, l3
        ecall
    l3: bgeu t1, t0, l4
        ecall
    l4: beq  t0, t0, l5
        ecall
    l5: bne  t0, t1, l6
        ecall
    l6: bgt  t1, t0, l7
        ecall
    l7: ble  t0, t1, okay
        ecall
    okay:
        li a0, 1
        ecall
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 1u);
}

TEST(Assembler, NumericAndAbiRegisters)
{
    const Program program = assemble(R"(
        li   x5, 100         # t0
        mv   a0, x5
        addi a0, a0, 1
        ecall
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 101u);
}

TEST(Assembler, HexAndNegativeImmediates)
{
    const Program program = assemble(R"(
        li   t0, 0x100
        addi t0, t0, -0x10
        mv   a0, t0
        ecall
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 0xF0u);
}

TEST(Assembler, MatchesBuilderEncoding)
{
    const Program assembled = assemble(R"(
        add  t0, t1, t2
        addi a0, a1, 42
        ld   a2, 16(sp)
        sd   a2, -8(sp)
        lui  s0, 0x12345000
        fence
    )");
    ProgramBuilder b("ref");
    using namespace reg;
    b.add(t0, t1, t2);
    b.addi(a0, a1, 42);
    b.ld(a2, sp, 16);
    b.sd(a2, sp, -8);
    b.lui(s0, 0x12345000);
    b.fence();
    EXPECT_EQ(assembled.code, b.build().code);
}

TEST(Assembler, RunsOnTimingModel)
{
    const Program program = assemble(R"(
        .data
    arr: .dword 4, 3, 2, 1
        .text
        la   s0, arr
        li   s1, 0           # sum
        li   t0, 0
    loop:
        slli t1, t0, 3
        add  t1, t1, s0
        ld   t2, 0(t1)
        add  s1, s1, t2
        addi t0, t0, 1
        li   t3, 4
        blt  t0, t3, loop
        mv   a0, s1
        ecall
    )");
    RocketCore core(RocketConfig{}, program);
    core.run(100000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 10u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus_mnemonic t0, t1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("bogus_mnemonic"), std::string::npos);
    }
}

TEST(Assembler, RejectsBadOperandCounts)
{
    EXPECT_THROW(assemble("add t0, t1\necall\n"), FatalError);
    EXPECT_THROW(assemble("ld t0, t1, t2\necall\n"), FatalError);
}

TEST(Assembler, RejectsUnknownRegister)
{
    EXPECT_THROW(assemble("addi q7, t0, 1\necall\n"), FatalError);
}

TEST(Assembler, RejectsInstructionInData)
{
    EXPECT_THROW(assemble(".data\nnop\n"), FatalError);
}

TEST(Assembler, ForwardDataReference)
{
    const Program program = assemble(R"(
        la   a1, later
        ld   a0, 0(a1)
        ecall
        .data
    later: .dword 77
    )");
    Executor exec(program);
    exec.run();
    EXPECT_EQ(exec.exitCode(), 77u);
}

TEST(Assembler, CsrAccess)
{
    // Reads mcycle twice around a delay loop (in-band counting).
    const Program program = assemble(R"(
        csrrs a1, 0xB00, zero
        li   t0, 50
    spin:
        addi t0, t0, -1
        bnez t0, spin
        csrrs a2, 0xB00, zero
        sub  a0, a2, a1
        ecall
    )");
    RocketCore core(RocketConfig{}, program);
    core.csrFile().setInhibit(false);
    core.run(100000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.executor().exitCode(), 40u);
}

} // namespace
} // namespace icicle
