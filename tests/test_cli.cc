/**
 * @file
 * CLI exit-code regression tests. These shell out to the real
 * icicle-trace and icicle-prove binaries (paths baked in by CMake) to
 * pin the exit-status contract scripts and CI depend on:
 *
 *   0  clean / query answered
 *   1  findings (prove)
 *   2  usage error or malformed input — including a query against an
 *      empty (header-only) store, which used to succeed vacuously
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "core/session.hh"
#include "store/store.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

#ifndef ICICLE_TRACE_BIN
#error "CMake must define ICICLE_TRACE_BIN for test_cli"
#endif
#ifndef ICICLE_PROVE_BIN
#error "CMake must define ICICLE_PROVE_BIN for test_cli"
#endif
#ifndef ICICLE_SWEEP_BIN
#error "CMake must define ICICLE_SWEEP_BIN for test_cli"
#endif
#ifndef ICICLE_LINT_BIN
#error "CMake must define ICICLE_LINT_BIN for test_cli"
#endif

namespace icicle
{
namespace
{

/** Run a shell command, stdout/stderr silenced; return exit status. */
int
run(const std::string &command)
{
    const int status =
        std::system((command + " > /dev/null 2>&1").c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

std::string
quoted(const std::string &path)
{
    return "'" + path + "'";
}

class TempPath
{
  public:
    explicit TempPath(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    const std::string path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CliTrace, QueryOnEmptyStoreExitsTwo)
{
    // Regression: `icicle-trace query` on a header-only store used to
    // print a count of 0 and exit 0, indistinguishable from a real
    // empty window. It must now refuse with the malformed-input code.
    TempPath store("cli_empty.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 0,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              2);
    // `info` on the same store stays informational (exit 0).
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " info " +
                  quoted(store.path)),
              0);
}

TEST(CliTrace, QueryOnRealStoreExitsZero)
{
    TempPath store("cli_real.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              0);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path) +
                  " --window 0:1000"),
              0);
}

TEST(CliTrace, MissingFileExitsTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles /nonexistent/x.icst"),
              2);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " bogus-command"),
              2);
}

TEST(CliTrace, SalvageExitCodeContract)
{
    // 0 = clean, 1 = damage found and recovered around, 2 = nothing
    // recoverable. Scripts route on these; pin all three.
    TempPath store("cli_salvage.icst");
    TempPath repaired("cli_salvage_repaired.icst");
    TempPath report("cli_salvage_report.json");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path)),
              0);

    // Truncate mid-store: the tail is gone, the prefix must survive.
    const auto size = std::filesystem::file_size(store.path);
    std::filesystem::resize_file(store.path, size - size / 3);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path) + " --repaired " +
                  quoted(repaired.path) + " --report " +
                  quoted(report.path)),
              1);
    // The repaired store opens strictly clean, and the damage report
    // is real JSON naming the source file.
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " info " +
                  quoted(repaired.path)),
              0);
    const std::string damage = slurp(report.path);
    EXPECT_NE(damage.find("\"salvaged\""), std::string::npos);
    EXPECT_NE(damage.find("cli_salvage.icst"), std::string::npos);

    // A file that is not an icicle store at all is unrecoverable.
    {
        std::ofstream garbage(store.path, std::ios::binary |
                                              std::ios::trunc);
        garbage << "this is not a trace store";
    }
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path)),
              2);
}

TEST(CliSweep, KillDuringJournalThenResumeIsByteIdentical)
{
    // End-to-end crash drill: a SIGKILL-equivalent fault lands in the
    // middle of the second journal append; the resumed campaign must
    // reproduce the uninterrupted report byte for byte.
    TempPath golden("cli_sweep_golden.csv");
    TempPath crashed("cli_sweep_crashed.csv");
    TempPath resumed("cli_sweep_resumed.csv");
    TempPath journal("cli_sweep.icjn");

    const std::string grid_flags =
        " --cores rocket --archs addwires"
        " --workloads vvadd,towers --cycles 2000000"
        " --format csv --out ";

    ASSERT_EQ(run(std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(golden.path)),
              0);

    // kill@journal#1 _Exit(137)s mid-append of the second record.
    EXPECT_EQ(run("ICICLE_FAULT='kill@journal#1' " +
                  std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(crashed.path) + " --journal " +
                  quoted(journal.path)),
              137);
    // The crash precedes the report: no partial output published.
    EXPECT_FALSE(std::filesystem::exists(crashed.path));
    EXPECT_TRUE(std::filesystem::exists(journal.path));

    EXPECT_EQ(run(std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(resumed.path) + " --journal " +
                  quoted(journal.path) + " --resume"),
              0);
    const std::string golden_csv = slurp(golden.path);
    ASSERT_FALSE(golden_csv.empty());
    EXPECT_EQ(slurp(resumed.path), golden_csv);
}

TEST(CliSweep, ResumeWithoutJournalExitsTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_SWEEP_BIN) +
                  " --workloads vvadd --resume"),
              2);
}

TEST(CliProve, ArchMatrixExitsZero)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16"),
              0);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16 --json"),
              0);
}

TEST(CliProve, TraceVerifiesACapturedStore)
{
    TempPath store("cli_prove.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "boom-small", CounterArch::AddWires,
        buildWorkload("dhrystone"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " trace " +
                  quoted(store.path)),
              0);
}

TEST(CliProve, ConstraintsDeriveForEveryShippedConfig)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " constraints"), 0);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " constraints rocket boom-mega --json"),
              0);
    // An unknown configuration is a usage error, not findings.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " constraints no-such-core"),
              2);
}

TEST(CliProve, RefuteExitCodeContract)
{
    // 0 = litmus suite clean on an unmutated build.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " refute rocket --workload litmus-width-retire"),
              0);
    // 2 = unbuildable / unknown config or litmus name.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " refute no-such-core"),
              2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " refute --workload no-such-litmus"),
              2);
}

/** Minimal structural parse of a SARIF file; returns its rule ids. */
std::vector<std::string>
sarifRuleIds(const std::string &path)
{
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"version\":\"2.1.0\""), std::string::npos)
        << path;
    EXPECT_NE(text.find("\"results\":"), std::string::npos) << path;
    std::vector<std::string> ids;
    const std::string rules_key = "\"rules\":[";
    const size_t rules = text.find(rules_key);
    EXPECT_NE(rules, std::string::npos) << path;
    if (rules == std::string::npos)
        return ids;
    const size_t end = text.find(']', rules);
    const std::string key = "\"id\":\"";
    for (size_t at = text.find(key, rules);
         at != std::string::npos && at < end;
         at = text.find(key, at + 1)) {
        const size_t start = at + key.size();
        ids.push_back(text.substr(start,
                                  text.find('"', start) - start));
    }
    return ids;
}

TEST(CliProve, RefuteSarifCarriesStableProveRuleIds)
{
    // The CI code-scanning upload keys on these ids; pin that a clean
    // refutation run still advertises every PROVE-R family.
    TempPath sarif("cli_refute.sarif");
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " refute rocket --workload litmus-width-retire"
                  " --sarif " +
                  quoted(sarif.path)),
              0);
    const std::vector<std::string> ids = sarifRuleIds(sarif.path);
    for (const char *rule : {"PROVE-R0", "PROVE-R1", "PROVE-R2",
                             "PROVE-R3", "PROVE-R4"}) {
        EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end())
            << rule << " missing from " << sarif.path;
    }
}

TEST(CliLint, SarifParsesWithPopulatedRuleTable)
{
    // icicle-lint's SARIF must stay structurally parseable for the
    // code-scanning upload; a clean run still carries the
    // model-fidelity notes in its rule table.
    TempPath sarif("cli_lint.sarif");
    EXPECT_EQ(run(std::string(ICICLE_LINT_BIN) +
                  " rocket-distributed --sarif " +
                  quoted(sarif.path)),
              0);
    const std::vector<std::string> ids = sarifRuleIds(sarif.path);
    EXPECT_FALSE(ids.empty());
    EXPECT_NE(std::find(ids.begin(), ids.end(), "TMA-005"),
              ids.end());
}

TEST(CliContract, HelpExitsZeroUnknownFlagExitsTwo)
{
    // Every shipped binary honours the same contract: --help (and -h)
    // succeeds with the usage text on stdout, an unrecognized flag is
    // a usage error on stderr with exit 2. All five go through
    // cli::usageExit, so one drifting apart is a real regression.
    const std::string binaries[] = {
        ICICLE_TRACE_BIN,  ICICLE_PROVE_BIN,      ICICLE_SWEEP_BIN,
        ICICLE_LINT_BIN,   ICICLED_BIN,           ICICLE_BENCH_SERVE_BIN,
    };
    for (const std::string &bin : binaries) {
        EXPECT_EQ(run(bin + " --help"), 0) << bin;
        EXPECT_EQ(run(bin + " -h"), 0) << bin;
        EXPECT_EQ(run(bin + " --no-such-flag"), 2) << bin;
    }
}

TEST(CliContract, HelpTextGoesToStdoutUsageErrorToStderr)
{
    // The streams matter: `tool --help | less` must show the text,
    // and a usage error must not pollute piped stdout.
    const std::string binaries[] = {
        ICICLE_TRACE_BIN,  ICICLE_PROVE_BIN,      ICICLE_SWEEP_BIN,
        ICICLE_LINT_BIN,   ICICLED_BIN,           ICICLE_BENCH_SERVE_BIN,
    };
    for (const std::string &bin : binaries) {
        TempPath captured("cli_contract_out.txt");
        ASSERT_EQ(std::system((bin + " --help > " +
                               quoted(captured.path) + " 2>/dev/null")
                                  .c_str()),
                  0)
            << bin;
        EXPECT_NE(slurp(captured.path).find("usage:"),
                  std::string::npos)
            << bin;

        std::system((bin + " --no-such-flag > " +
                     quoted(captured.path) + " 2>/dev/null")
                        .c_str());
        EXPECT_TRUE(slurp(captured.path).empty()) << bin;
    }
}

TEST(CliSweep, ResumeGridMismatchNamesJournalAndBothHashes)
{
    // A journal from one grid replayed against another must refuse
    // with a diagnostic a user can act on: the journal path plus both
    // grid hashes in hex.
    TempPath journal("cli_mismatch.icjn");
    TempPath out("cli_mismatch.csv");
    TempPath errs("cli_mismatch_err.txt");

    ASSERT_EQ(run(std::string(ICICLE_SWEEP_BIN) +
                  " --workloads vvadd --cycles 200000 --journal " +
                  quoted(journal.path) + " --out " + quoted(out.path)),
              0);
    std::system((std::string(ICICLE_SWEEP_BIN) +
                 " --workloads vvadd,towers --cycles 200000"
                 " --journal " +
                 quoted(journal.path) + " --resume --out " +
                 quoted(out.path) + " > /dev/null 2> " +
                 quoted(errs.path))
                    .c_str());
    const std::string diag = slurp(errs.path);
    EXPECT_NE(diag.find(journal.path), std::string::npos) << diag;
    EXPECT_NE(diag.find("refusing to resume"), std::string::npos)
        << diag;
    // Two distinct hex hashes, 0x-prefixed.
    const size_t first = diag.find("0x");
    ASSERT_NE(first, std::string::npos) << diag;
    const size_t second = diag.find("0x", first + 2);
    ASSERT_NE(second, std::string::npos) << diag;
    EXPECT_NE(diag.substr(first, 10), diag.substr(second, 10))
        << diag;
}

TEST(CliProve, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN)), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " bogus"), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " trace /nonexistent/x.icst"),
              2);
#ifndef ICICLE_MUTANTS
    // Without the mutant build the suite must refuse, not vacuously
    // pass: a CI misconfiguration that drops -DICICLE_MUTANTS=ON
    // would otherwise look green.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " mutants"), 2);
#endif
}

} // namespace
} // namespace icicle
