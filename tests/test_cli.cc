/**
 * @file
 * CLI exit-code regression tests. These shell out to the real
 * icicle-trace and icicle-prove binaries (paths baked in by CMake) to
 * pin the exit-status contract scripts and CI depend on:
 *
 *   0  clean / query answered
 *   1  findings (prove)
 *   2  usage error or malformed input — including a query against an
 *      empty (header-only) store, which used to succeed vacuously
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

#include "core/session.hh"
#include "store/store.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

#ifndef ICICLE_TRACE_BIN
#error "CMake must define ICICLE_TRACE_BIN for test_cli"
#endif
#ifndef ICICLE_PROVE_BIN
#error "CMake must define ICICLE_PROVE_BIN for test_cli"
#endif

namespace icicle
{
namespace
{

/** Run a shell command, stdout/stderr silenced; return exit status. */
int
run(const std::string &command)
{
    const int status =
        std::system((command + " > /dev/null 2>&1").c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

std::string
quoted(const std::string &path)
{
    return "'" + path + "'";
}

class TempPath
{
  public:
    explicit TempPath(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempPath() { std::remove(path.c_str()); }
    const std::string path;
};

TEST(CliTrace, QueryOnEmptyStoreExitsTwo)
{
    // Regression: `icicle-trace query` on a header-only store used to
    // print a count of 0 and exit 0, indistinguishable from a real
    // empty window. It must now refuse with the malformed-input code.
    TempPath store("cli_empty.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 0,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              2);
    // `info` on the same store stays informational (exit 0).
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " info " +
                  quoted(store.path)),
              0);
}

TEST(CliTrace, QueryOnRealStoreExitsZero)
{
    TempPath store("cli_real.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              0);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path) +
                  " --window 0:1000"),
              0);
}

TEST(CliTrace, MissingFileExitsTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles /nonexistent/x.icst"),
              2);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " bogus-command"),
              2);
}

TEST(CliProve, ArchMatrixExitsZero)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16"),
              0);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16 --json"),
              0);
}

TEST(CliProve, TraceVerifiesACapturedStore)
{
    TempPath store("cli_prove.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "boom-small", CounterArch::AddWires,
        buildWorkload("dhrystone"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " trace " +
                  quoted(store.path)),
              0);
}

TEST(CliProve, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN)), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " bogus"), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " trace /nonexistent/x.icst"),
              2);
#ifndef ICICLE_MUTANTS
    // Without the mutant build the suite must refuse, not vacuously
    // pass: a CI misconfiguration that drops -DICICLE_MUTANTS=ON
    // would otherwise look green.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " mutants"), 2);
#endif
}

} // namespace
} // namespace icicle
