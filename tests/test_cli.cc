/**
 * @file
 * CLI exit-code regression tests. These shell out to the real
 * icicle-trace and icicle-prove binaries (paths baked in by CMake) to
 * pin the exit-status contract scripts and CI depend on:
 *
 *   0  clean / query answered
 *   1  findings (prove)
 *   2  usage error or malformed input — including a query against an
 *      empty (header-only) store, which used to succeed vacuously
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "core/session.hh"
#include "store/store.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

#ifndef ICICLE_TRACE_BIN
#error "CMake must define ICICLE_TRACE_BIN for test_cli"
#endif
#ifndef ICICLE_PROVE_BIN
#error "CMake must define ICICLE_PROVE_BIN for test_cli"
#endif
#ifndef ICICLE_SWEEP_BIN
#error "CMake must define ICICLE_SWEEP_BIN for test_cli"
#endif

namespace icicle
{
namespace
{

/** Run a shell command, stdout/stderr silenced; return exit status. */
int
run(const std::string &command)
{
    const int status =
        std::system((command + " > /dev/null 2>&1").c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

std::string
quoted(const std::string &path)
{
    return "'" + path + "'";
}

class TempPath
{
  public:
    explicit TempPath(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    const std::string path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CliTrace, QueryOnEmptyStoreExitsTwo)
{
    // Regression: `icicle-trace query` on a header-only store used to
    // print a count of 0 and exit 0, indistinguishable from a real
    // empty window. It must now refuse with the malformed-input code.
    TempPath store("cli_empty.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 0,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              2);
    // `info` on the same store stays informational (exit 0).
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " info " +
                  quoted(store.path)),
              0);
}

TEST(CliTrace, QueryOnRealStoreExitsZero)
{
    TempPath store("cli_real.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path)),
              0);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles " + quoted(store.path) +
                  " --window 0:1000"),
              0);
}

TEST(CliTrace, MissingFileExitsTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) +
                  " query fetch-bubbles /nonexistent/x.icst"),
              2);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " bogus-command"),
              2);
}

TEST(CliTrace, SalvageExitCodeContract)
{
    // 0 = clean, 1 = damage found and recovered around, 2 = nothing
    // recoverable. Scripts route on these; pin all three.
    TempPath store("cli_salvage.icst");
    TempPath repaired("cli_salvage_repaired.icst");
    TempPath report("cli_salvage_report.json");
    std::unique_ptr<Core> core = makeSweepCore(
        "rocket", CounterArch::AddWires, buildWorkload("vvadd"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path)),
              0);

    // Truncate mid-store: the tail is gone, the prefix must survive.
    const auto size = std::filesystem::file_size(store.path);
    std::filesystem::resize_file(store.path, size - size / 3);
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path) + " --repaired " +
                  quoted(repaired.path) + " --report " +
                  quoted(report.path)),
              1);
    // The repaired store opens strictly clean, and the damage report
    // is real JSON naming the source file.
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " info " +
                  quoted(repaired.path)),
              0);
    const std::string damage = slurp(report.path);
    EXPECT_NE(damage.find("\"salvaged\""), std::string::npos);
    EXPECT_NE(damage.find("cli_salvage.icst"), std::string::npos);

    // A file that is not an icicle store at all is unrecoverable.
    {
        std::ofstream garbage(store.path, std::ios::binary |
                                              std::ios::trunc);
        garbage << "this is not a trace store";
    }
    EXPECT_EQ(run(std::string(ICICLE_TRACE_BIN) + " salvage " +
                  quoted(store.path)),
              2);
}

TEST(CliSweep, KillDuringJournalThenResumeIsByteIdentical)
{
    // End-to-end crash drill: a SIGKILL-equivalent fault lands in the
    // middle of the second journal append; the resumed campaign must
    // reproduce the uninterrupted report byte for byte.
    TempPath golden("cli_sweep_golden.csv");
    TempPath crashed("cli_sweep_crashed.csv");
    TempPath resumed("cli_sweep_resumed.csv");
    TempPath journal("cli_sweep.icjn");

    const std::string grid_flags =
        " --cores rocket --archs addwires"
        " --workloads vvadd,towers --cycles 2000000"
        " --format csv --out ";

    ASSERT_EQ(run(std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(golden.path)),
              0);

    // kill@journal#1 _Exit(137)s mid-append of the second record.
    EXPECT_EQ(run("ICICLE_FAULT='kill@journal#1' " +
                  std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(crashed.path) + " --journal " +
                  quoted(journal.path)),
              137);
    // The crash precedes the report: no partial output published.
    EXPECT_FALSE(std::filesystem::exists(crashed.path));
    EXPECT_TRUE(std::filesystem::exists(journal.path));

    EXPECT_EQ(run(std::string(ICICLE_SWEEP_BIN) + grid_flags +
                  quoted(resumed.path) + " --journal " +
                  quoted(journal.path) + " --resume"),
              0);
    const std::string golden_csv = slurp(golden.path);
    ASSERT_FALSE(golden_csv.empty());
    EXPECT_EQ(slurp(resumed.path), golden_csv);
}

TEST(CliSweep, ResumeWithoutJournalExitsTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_SWEEP_BIN) +
                  " --workloads vvadd --resume"),
              2);
}

TEST(CliProve, ArchMatrixExitsZero)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16"),
              0);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " arch --horizon 16 --json"),
              0);
}

TEST(CliProve, TraceVerifiesACapturedStore)
{
    TempPath store("cli_prove.icst");
    std::unique_ptr<Core> core = makeSweepCore(
        "boom-small", CounterArch::AddWires,
        buildWorkload("dhrystone"));
    streamTraceToStore(*core, TraceSpec::tmaBundle(*core), 20000,
                       store.path, 4096);

    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " trace " +
                  quoted(store.path)),
              0);
}

TEST(CliProve, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN)), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " bogus"), 2);
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) +
                  " trace /nonexistent/x.icst"),
              2);
#ifndef ICICLE_MUTANTS
    // Without the mutant build the suite must refuse, not vacuously
    // pass: a CI misconfiguration that drops -DICICLE_MUTANTS=ON
    // would otherwise look green.
    EXPECT_EQ(run(std::string(ICICLE_PROVE_BIN) + " mutants"), 2);
#endif
}

} // namespace
} // namespace icicle
