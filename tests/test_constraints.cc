/**
 * @file
 * Tests for icicle-refute's static half (constraint derivation, REF
 * satisfiability lint) and runtime half (litmus suite + PROVE-R
 * refutation checker): the derived set is deterministic and
 * substantive with full provenance, every litmus program self-checks
 * clean on both cores, measured deltas never refute an unmutated
 * build, and seeded wiring violations trip the REF rules at lint
 * time.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analysis/constraints.hh"
#include "analysis/lint.hh"
#include "common/logging.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "prove/refute.hh"
#include "sweep/sweep.hh"
#include "workloads/litmus.hh"

namespace icicle
{
namespace
{

Program
stubProgram()
{
    ProgramBuilder b("stub");
    b.halt();
    return b.build();
}

/**
 * Minimal Core with corruptible event-bus geometry, for seeding the
 * REF satisfiability violations real cores never exhibit.
 */
class PuppetCore : public Core
{
  public:
    PuppetCore(CoreKind kind, u32 core_width, const Program &program)
        : puppetKind(kind), widthC(core_width), exec(program),
          csrFileImpl(kind, CounterArch::AddWires, &events)
    {
        if (kind == CoreKind::Boom) {
            events.setNumSources(EventId::UopsIssued, core_width);
            events.setNumSources(EventId::FetchBubbles, core_width);
            events.setNumSources(EventId::UopsRetired, core_width);
            events.setNumSources(EventId::InstRetired, core_width);
            events.setNumSources(EventId::DCacheBlocked, core_width);
            events.setNumSources(EventId::DCacheBlockedDram,
                                 core_width);
        }
    }

    void tick() override { csrFileImpl.tick(events); }
    bool done() const override { return true; }
    u64
    run(u64, const std::function<void(Cycle, const EventBus &)> &)
        override
    {
        return 0;
    }
    Cycle cycle() const override { return 0; }
    const EventBus &bus() const override { return events; }
    CsrFile &csrFile() override { return csrFileImpl; }
    Executor &executor() override { return exec; }
    CoreKind kind() const override { return puppetKind; }
    u32 coreWidth() const override { return widthC; }
    u32 issueWidth() const override { return widthC; }
    const char *name() const override { return "Puppet"; }
    u64 total(EventId) const override { return 0; }
    u64 laneTotal(EventId, u32) const override { return 0; }

    EventBus events;

  private:
    CoreKind puppetKind;
    u32 widthC;
    Executor exec;
    CsrFile csrFileImpl;
};

} // namespace

// ======================================================= derivation

TEST(Constraints, DerivationIsSubstantiveOnEveryShippedConfig)
{
    const Program program = stubProgram();
    for (const std::string &name : sweepCoreNames()) {
        const std::unique_ptr<Core> core =
            makeSweepCore(name, CounterArch::AddWires, program);
        const ConstraintSet set = deriveConstraints(*core);

        // The acceptance floor: a substantive, typed ruleset.
        EXPECT_GE(set.size(), 15u) << name;
        EXPECT_FALSE(set.linear.empty()) << name;
        EXPECT_FALSE(set.tma.empty()) << name;

        // Every constraint is introspectable: id, rule family, text,
        // and a non-empty derivation chain.
        std::set<std::string> ids;
        for (const LinearConstraint &c : set.linear) {
            EXPECT_FALSE(c.id.empty()) << name;
            EXPECT_TRUE(std::string(c.rule).rfind("PROVE-R", 0) == 0)
                << name << "/" << c.id;
            EXPECT_FALSE(c.text.empty()) << name << "/" << c.id;
            EXPECT_FALSE(c.provenance.empty()) << name << "/" << c.id;
            EXPECT_TRUE(ids.insert(c.id).second)
                << "duplicate id " << c.id << " on " << name;
        }
        for (const TmaConstraint &c : set.tma) {
            EXPECT_FALSE(c.id.empty()) << name;
            EXPECT_STREQ(c.rule, "PROVE-R4") << name << "/" << c.id;
            EXPECT_FALSE(c.text.empty()) << name << "/" << c.id;
            EXPECT_FALSE(c.provenance.empty()) << name << "/" << c.id;
            EXPECT_TRUE(ids.insert(c.id).second)
                << "duplicate id " << c.id << " on " << name;
        }
    }
}

TEST(Constraints, DerivationIsDeterministic)
{
    const Program program = stubProgram();
    for (const char *name : {"rocket", "boom-large"}) {
        const std::unique_ptr<Core> a =
            makeSweepCore(name, CounterArch::AddWires, program);
        const std::unique_ptr<Core> b =
            makeSweepCore(name, CounterArch::Distributed, program);
        // Same configuration -> byte-identical listing and JSON, even
        // across separately constructed cores and counter arches.
        EXPECT_EQ(deriveConstraints(*a).format(),
                  deriveConstraints(*b).format());
        EXPECT_EQ(deriveConstraints(*a).toJson(),
                  deriveConstraints(*b).toJson());
    }
}

TEST(Constraints, CoversEveryRuleFamilyOnBothCores)
{
    const Program program = stubProgram();
    for (const char *name : {"rocket", "boom-small"}) {
        const std::unique_ptr<Core> core =
            makeSweepCore(name, CounterArch::AddWires, program);
        const ConstraintSet set = deriveConstraints(*core);
        bool width = false, dom = false, part = false;
        for (const LinearConstraint &c : set.linear) {
            width |= c.kind == ConstraintKind::WidthBound;
            dom |= c.kind == ConstraintKind::Dominance;
            part |= c.kind == ConstraintKind::Partition;
        }
        EXPECT_TRUE(width) << name;
        EXPECT_TRUE(dom) << name;
        EXPECT_TRUE(part) << name;
        bool interval = false, sum_is_one = false;
        for (const TmaConstraint &c : set.tma) {
            interval |= c.op == TmaCheckOp::InInterval;
            sum_is_one |= c.op == TmaCheckOp::SumIsOne;
        }
        EXPECT_TRUE(interval) << name;
        EXPECT_TRUE(sum_is_one)
            << name << ": top-level conservation not derived";
    }
}

// ======================================================= evaluation

TEST(Constraints, LinearEvaluationMatchesHandComputation)
{
    std::array<u64, kNumEvents> deltas{};
    deltas[static_cast<u32>(EventId::Cycles)] = 100;
    deltas[static_cast<u32>(EventId::InstRetired)] = 40;
    deltas[static_cast<u32>(EventId::ArithRetired)] = 40;

    LinearConstraint width;
    width.op = ConstraintOp::GeZero;
    width.terms = {{EventId::Cycles, 1}, {EventId::InstRetired, -1}};
    EXPECT_EQ(evaluateLinear(width, deltas), 60);
    EXPECT_TRUE(satisfiesLinear(width, deltas));
    deltas[static_cast<u32>(EventId::InstRetired)] = 101;
    EXPECT_EQ(evaluateLinear(width, deltas), -1);
    EXPECT_FALSE(satisfiesLinear(width, deltas));

    LinearConstraint part;
    part.op = ConstraintOp::EqZero;
    part.terms = {{EventId::InstRetired, 1},
                  {EventId::ArithRetired, -1}};
    deltas[static_cast<u32>(EventId::InstRetired)] = 40;
    EXPECT_TRUE(satisfiesLinear(part, deltas));
    deltas[static_cast<u32>(EventId::InstRetired)] = 41;
    EXPECT_FALSE(satisfiesLinear(part, deltas));

    // An end-of-run-only GeZero with a constant: delta(cycles) >= 1.
    LinearConstraint progress;
    progress.terms = {{EventId::Cycles, 1}};
    progress.constant = -1;
    EXPECT_TRUE(satisfiesLinear(progress, deltas));
}

TEST(Constraints, TmaChecksDetectEachViolationShape)
{
    TmaResult r;
    r.retiring = 0.25;
    r.badSpeculation = 0.25;
    r.frontend = 0.25;
    r.backend = 0.25;
    r.fetchLatency = 0.2;
    r.pcResteer = 0.05;

    double excess = 0;

    TmaConstraint in;
    in.op = TmaCheckOp::InInterval;
    in.subject = TmaRoot::Retiring;
    in.bounds = Interval(0.0, 1.0);
    EXPECT_TRUE(satisfiesTma(in, r, &excess));
    in.bounds = Interval(0.5, 1.0);
    EXPECT_FALSE(satisfiesTma(in, r, &excess));
    EXPECT_NEAR(excess, 0.25, 1e-12);

    TmaConstraint split;
    split.op = TmaCheckOp::PartsSumToWhole;
    split.subject = TmaRoot::Frontend;
    split.parts = {TmaRoot::FetchLatency, TmaRoot::PcResteer};
    EXPECT_TRUE(satisfiesTma(split, r, &excess));
    r.pcResteer = 0.2;
    EXPECT_FALSE(satisfiesTma(split, r, &excess));
    EXPECT_NEAR(excess, 0.15, 1e-12);

    TmaConstraint dom;
    dom.op = TmaCheckOp::DominatedBy;
    dom.subject = TmaRoot::FetchLatency;
    dom.parts = {TmaRoot::Frontend};
    EXPECT_TRUE(satisfiesTma(dom, r, &excess));
    r.fetchLatency = 0.5;
    EXPECT_FALSE(satisfiesTma(dom, r, &excess));
    EXPECT_NEAR(excess, 0.25, 1e-12);

    TmaConstraint sum;
    sum.op = TmaCheckOp::SumIsOne;
    sum.parts = {TmaRoot::Retiring, TmaRoot::BadSpeculation,
                 TmaRoot::Frontend, TmaRoot::Backend};
    EXPECT_TRUE(satisfiesTma(sum, r, &excess));
    r.backend = 0.5;
    EXPECT_FALSE(satisfiesTma(sum, r, &excess));
    EXPECT_NEAR(excess, 0.25, 1e-12);
}

// ========================================================= REF lint

TEST(ConstraintsLint, ShippedConfigsPassTheRefRules)
{
    const Program program = stubProgram();
    for (const std::string &name : sweepCoreNames()) {
        const std::unique_ptr<Core> core =
            makeSweepCore(name, CounterArch::AddWires, program);
        const LintReport report = lintCore(*core);
        for (const char *rule :
             {"REF-001", "REF-002", "REF-003", "REF-004"}) {
            EXPECT_TRUE(report.byRule(rule).empty())
                << name << " raised " << rule << ":\n"
                << report.format();
        }
    }
}

TEST(ConstraintsLint, ZeroSourceEventFailsRef002)
{
    PuppetCore core(CoreKind::Boom, 2, stubProgram());
    core.events.setNumSources(EventId::UopsIssued, 0);
    const LintReport report = lintConstraints(core, LintOptions{});
    EXPECT_TRUE(report.hasRule("REF-002")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(ConstraintsLint, OverwideEventFailsRef002)
{
    PuppetCore core(CoreKind::Boom, 2, stubProgram());
    core.events.setNumSources(EventId::FetchBubbles,
                              kMaxSources + 1);
    const LintReport report = lintConstraints(core, LintOptions{});
    EXPECT_TRUE(report.hasRule("REF-002")) << report.format();
}

TEST(ConstraintsLint, UndersizedPartitionFailsRef004)
{
    // A retire wire wider than its class wires combined can never
    // satisfy the conservation equality at saturation.
    PuppetCore core(CoreKind::Rocket, 1, stubProgram());
    core.events.setNumSources(EventId::InstRetired, 8);
    const LintReport report = lintConstraints(core, LintOptions{});
    EXPECT_TRUE(report.hasRule("REF-004")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(ConstraintsLint, RunsAsPartOfLintCore)
{
    // The satisfiability audit is wired into the Session-construction
    // lint, so a statically-broken wiring fails fast.
    PuppetCore core(CoreKind::Rocket, 1, stubProgram());
    core.events.setNumSources(EventId::InstRetired, 8);
    EXPECT_TRUE(lintCore(core).hasRule("REF-004"));
}

// ============================================== litmus + refutation

TEST(Litmus, SuiteIsRegisteredAndBuildable)
{
    const std::vector<LitmusInfo> &suite = litmusSuite();
    ASSERT_GE(suite.size(), 6u);
    std::set<std::string> names;
    for (const LitmusInfo &info : suite) {
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate litmus name " << info.name;
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_FALSE(info.targets.empty()) << info.name;
        const Program program = info.build();
        EXPECT_FALSE(program.code.empty()) << info.name;
        EXPECT_EQ(program.name, info.name);
    }
    EXPECT_THROW(buildLitmus("no-such-litmus"), FatalError);
}

TEST(Litmus, EveryProgramSelfChecksOnBothCores)
{
    for (const LitmusInfo &info : litmusSuite()) {
        for (const char *core_name : {"rocket", "boom-small"}) {
            const std::unique_ptr<Core> core = makeSweepCore(
                core_name, CounterArch::AddWires, info.build());
            core->run(2'000'000);
            ASSERT_TRUE(core->done())
                << info.name << " did not halt on " << core_name;
            EXPECT_EQ(core->executor().exitCode(), 0u)
                << info.name << " failed its self-check on "
                << core_name;
        }
    }
}

TEST(Refute, UnmutatedBuildIsNeverRefuted)
{
    // The full campaign: both default cores x the whole litmus suite.
    const RefuteResult result = proveRefutation();
    EXPECT_EQ(result.report.errorCount(), 0u)
        << result.report.format();
    EXPECT_EQ(result.sets.size(), 2u);
    EXPECT_EQ(result.runs.size(), 2 * litmusSuite().size());
    for (const RefuteRun &run : result.runs) {
        EXPECT_TRUE(run.halted) << run.core << "/" << run.workload;
        EXPECT_GT(run.checked, 15u) << run.core << "/" << run.workload;
        EXPECT_EQ(run.violations, 0u)
            << run.core << "/" << run.workload;
    }
    // Clean reports still carry every PROVE-R family id (stable SARIF
    // rule table).
    for (const char *rule : {"PROVE-R0", "PROVE-R1", "PROVE-R2",
                             "PROVE-R3", "PROVE-R4"}) {
        EXPECT_TRUE(result.report.hasRule(rule)) << rule;
    }
}

TEST(Refute, SkipsEndOfRunConstraintsMidFlight)
{
    // A one-cycle budget leaves the pipeline full: the checker must
    // not refute drained-pipeline facts (and must flag the incomplete
    // run via PROVE-R0), but pointwise facts still hold.
    RefuteOptions options;
    options.cores = {"boom-small"};
    options.workloads = {"litmus-width-retire"};
    options.maxCycles = 1;
    const RefuteResult result = proveRefutation(options);
    ASSERT_EQ(result.runs.size(), 1u);
    EXPECT_FALSE(result.runs[0].halted);
    for (const Diagnostic &diag : result.report.diagnostics()) {
        if (diag.severity != Severity::Error)
            continue;
        EXPECT_EQ(diag.rule, "PROVE-R0") << diag.message;
    }
}

TEST(Refute, UnknownNamesAreFatal)
{
    RefuteOptions bad_core;
    bad_core.cores = {"no-such-core"};
    EXPECT_THROW(proveRefutation(bad_core), FatalError);

    RefuteOptions bad_litmus;
    bad_litmus.workloads = {"no-such-litmus"};
    EXPECT_THROW(proveRefutation(bad_litmus), FatalError);
}

} // namespace icicle
