/**
 * @file
 * Synthetic-workload generator tests: every knob must move its TMA
 * class in the expected direction — the property that makes the
 * generator useful for characterization research.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "common/logging.hh"
#include "core/session.hh"
#include "isa/executor.hh"
#include "rocket/rocket.hh"
#include "workloads/generator.hh"

namespace icicle
{
namespace
{

TmaResult
runOnBoom(const SyntheticSpec &spec)
{
    BoomCore core(BoomConfig::large(), generateSynthetic(spec));
    core.run(50'000'000);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 0u);
    return analyzeTma(core);
}

TEST(Generator, DefaultSpecSelfChecks)
{
    Executor exec(generateSynthetic(SyntheticSpec{}));
    exec.run(100'000'000);
    ASSERT_TRUE(exec.halted());
    EXPECT_EQ(exec.exitCode(), 0u);
}

TEST(Generator, PureIlpIsRetiringDominated)
{
    SyntheticSpec spec;
    spec.ilpChains = 6;
    spec.chainDepth = 4;
    const TmaResult r = runOnBoom(spec);
    EXPECT_GT(r.retiring, 0.6) << formatTmaLine(r);
}

TEST(Generator, UnpredictableBranchesRaiseBadSpec)
{
    SyntheticSpec calm;
    SyntheticSpec branchy = calm;
    branchy.unpredictableBranches = 4;
    const TmaResult r_calm = runOnBoom(calm);
    const TmaResult r_branchy = runOnBoom(branchy);
    EXPECT_GT(r_branchy.badSpeculation,
              r_calm.badSpeculation + 0.10)
        << formatTmaLine(r_branchy);
}

TEST(Generator, PredictableBranchesDoNot)
{
    SyntheticSpec calm;
    SyntheticSpec branchy = calm;
    branchy.predictableBranches = 4;
    const TmaResult r_calm = runOnBoom(calm);
    const TmaResult r_branchy = runOnBoom(branchy);
    EXPECT_LT(r_branchy.badSpeculation,
              r_calm.badSpeculation + 0.05);
}

TEST(Generator, BigFootprintLoadsRaiseMemBound)
{
    SyntheticSpec small;
    small.loads = 4;
    small.dataKiB = 16; // L1-resident
    SyntheticSpec big = small;
    big.dataKiB = 2048; // beyond L2
    const TmaResult r_small = runOnBoom(small);
    const TmaResult r_big = runOnBoom(big);
    EXPECT_GT(r_big.memBound, r_small.memBound + 0.15)
        << formatTmaLine(r_big);
    EXPECT_GT(r_big.memBoundDram, r_big.memBoundL2);
}

TEST(Generator, DividesRaiseCoreBound)
{
    SyntheticSpec calm;
    SyntheticSpec divy = calm;
    divy.divs = 2;
    const TmaResult r_calm = runOnBoom(calm);
    const TmaResult r_divy = runOnBoom(divy);
    EXPECT_GT(r_divy.coreBound, r_calm.coreBound + 0.10)
        << formatTmaLine(r_divy);
}

TEST(Generator, CodeBloatRaisesFrontend)
{
    SyntheticSpec lean;
    lean.iterations = 400;
    SyntheticSpec bloated = lean;
    bloated.codeBloatFuncs = 160; // ~37 KiB of code > 32 KiB L1I
    const TmaResult r_lean = runOnBoom(lean);
    const TmaResult r_bloated = runOnBoom(bloated);
    EXPECT_GT(r_bloated.frontend, r_lean.frontend + 0.05)
        << formatTmaLine(r_bloated);
    EXPECT_GT(r_bloated.fetchLatency, 0.0);
}

TEST(Generator, RunsOnRocketToo)
{
    SyntheticSpec spec;
    spec.unpredictableBranches = 1;
    spec.loads = 1;
    RocketCore core(RocketConfig{}, generateSynthetic(spec));
    core.run(50'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.executor().exitCode(), 0u);
}

TEST(Generator, RejectsDegenerateSpecs)
{
    SyntheticSpec zero;
    zero.iterations = 0;
    EXPECT_THROW(generateSynthetic(zero), FatalError);
    SyntheticSpec wide;
    wide.ilpChains = 7;
    EXPECT_THROW(generateSynthetic(wide), FatalError);
}

TEST(Generator, DeterministicAcrossCalls)
{
    SyntheticSpec spec;
    spec.unpredictableBranches = 2;
    const Program a = generateSynthetic(spec);
    const Program b = generateSynthetic(spec);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.data, b.data);
}

} // namespace
} // namespace icicle
