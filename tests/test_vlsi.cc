/**
 * @file
 * VLSI cost-model tests: the paper's §V-C claims as properties —
 * overhead bounds, 200 MHz feasibility, the AddWires/Distributed
 * delay crossover with size, hardware-counter counts, and the
 * per-lane wirelength ablation.
 */

#include <gtest/gtest.h>

#include "vlsi/vlsi.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

TEST(Vlsi, AllConfigurationsMeet200MHz)
{
    for (const VlsiReport &r : vlsiSweep())
        EXPECT_TRUE(r.meets200MHz) << formatVlsiRow(r);
}

TEST(Vlsi, OverheadBoundsMatchPaperScale)
{
    double max_power = 0, max_area = 0, max_wire = 0;
    for (const VlsiReport &r : vlsiSweep()) {
        max_power = std::max(max_power, r.powerOverheadPct);
        max_area = std::max(max_area, r.areaOverheadPct);
        max_wire = std::max(max_wire, r.wirelengthOverheadPct);
    }
    // Paper: 4.15% / 1.54% / 9.93% maxima (we sweep one size more).
    EXPECT_GT(max_power, 2.0);
    EXPECT_LT(max_power, 6.0);
    EXPECT_GT(max_area, 1.0);
    EXPECT_LT(max_area, 2.5);
    EXPECT_GT(max_wire, 7.0);
    EXPECT_LT(max_wire, 12.0);
}

TEST(Vlsi, ScalarOverheadGrowsWithCoreSize)
{
    // More lanes -> more counters -> more overhead, monotone in size.
    double prev_power = 0;
    u32 prev_counters = 0;
    for (const BoomConfig &cfg : BoomConfig::allSizes()) {
        const VlsiReport r = evaluateVlsi(cfg, CounterArch::Scalar);
        EXPECT_GE(r.powerOverheadPct, prev_power) << cfg.name;
        EXPECT_GE(r.hwCounters, prev_counters) << cfg.name;
        prev_power = r.powerOverheadPct;
        prev_counters = r.hwCounters;
    }
}

TEST(Vlsi, DelayCrossoverBetweenMediumAndLarge)
{
    // Fig. 9b: adders beat distributed on Small/Medium; distributed
    // scales better from Large up.
    auto delay = [](const BoomConfig &cfg, CounterArch arch) {
        return evaluateVlsi(cfg, arch).csrPathDelayNs;
    };
    EXPECT_LT(delay(BoomConfig::small(), CounterArch::AddWires),
              delay(BoomConfig::small(), CounterArch::Distributed));
    EXPECT_LT(delay(BoomConfig::medium(), CounterArch::AddWires),
              delay(BoomConfig::medium(), CounterArch::Distributed));
    EXPECT_GT(delay(BoomConfig::large(), CounterArch::AddWires),
              delay(BoomConfig::large(), CounterArch::Distributed));
    EXPECT_GT(delay(BoomConfig::mega(), CounterArch::AddWires),
              delay(BoomConfig::mega(), CounterArch::Distributed));
    EXPECT_GT(delay(BoomConfig::giga(), CounterArch::AddWires),
              delay(BoomConfig::giga(), CounterArch::Distributed));
}

TEST(Vlsi, DistributedDelayIsSizeStable)
{
    // The arbiter is constant: distributed delay barely moves across
    // sizes (the scalability claim).
    const double small =
        evaluateVlsi(BoomConfig::small(), CounterArch::Distributed)
            .csrPathDelayNs;
    const double giga =
        evaluateVlsi(BoomConfig::giga(), CounterArch::Distributed)
            .csrPathDelayNs;
    EXPECT_LT(giga / small, 1.10);
}

TEST(Vlsi, AddWiresDelayGrowsWithIssueWidth)
{
    const double small =
        evaluateVlsi(BoomConfig::small(), CounterArch::AddWires)
            .csrPathDelayNs;
    const double giga =
        evaluateVlsi(BoomConfig::giga(), CounterArch::AddWires)
            .csrPathDelayNs;
    EXPECT_GT(giga, small * 1.8);
}

TEST(Vlsi, HardwareCounterBudget)
{
    // Scalar on Giga needs 29 programmable counters (exactly the
    // budget); aggregating architectures need one per event (9).
    const VlsiReport scalar =
        evaluateVlsi(BoomConfig::giga(), CounterArch::Scalar);
    const VlsiReport addw =
        evaluateVlsi(BoomConfig::giga(), CounterArch::AddWires);
    const VlsiReport dist =
        evaluateVlsi(BoomConfig::giga(), CounterArch::Distributed);
    EXPECT_EQ(scalar.hwCounters, 29u);
    EXPECT_EQ(addw.hwCounters, 9u);
    EXPECT_EQ(dist.hwCounters, 9u);
}

TEST(Vlsi, SingleLaneAblationShortensLongestWire)
{
    // §V-A: instrumenting only one fetch-bubble lane shortens the
    // longest PMU wire (the paper reports -11.39%).
    const VlsiReport full = evaluateVlsi(
        BoomConfig::large(), CounterArch::AddWires, {}, {}, true);
    const VlsiReport single = evaluateVlsi(
        BoomConfig::large(), CounterArch::AddWires, {}, {}, false);
    EXPECT_LT(single.longestPmuWireUm, full.longestPmuWireUm);
    const double reduction_pct =
        100.0 * (full.longestPmuWireUm - single.longestPmuWireUm) /
        full.longestPmuWireUm;
    EXPECT_GT(reduction_pct, 2.0);
    EXPECT_LT(reduction_pct, 30.0);
}

TEST(Vlsi, NormalizedDelayIsRelativeToScalar)
{
    const auto reports = vlsiSweep();
    for (u64 i = 0; i < reports.size(); i += 3) {
        EXPECT_NEAR(reports[i].normalizedCsrDelay, 1.0, 1e-9)
            << reports[i].configName;
        EXPECT_GT(reports[i + 1].normalizedCsrDelay, 0.0);
        EXPECT_GT(reports[i + 2].normalizedCsrDelay, 0.0);
    }
}

TEST(Vlsi, MeasuredActivityFeedsPowerModel)
{
    BoomCore core(BoomConfig::large(), workloads::towers());
    core.run(10'000'000);
    ASSERT_TRUE(core.done());
    const ActivityFactors activity = measureActivity(core);
    EXPECT_GT(activity.uopsRetired, 0.0);
    EXPECT_LE(activity.uopsRetired, 3.0);
    const VlsiReport with_activity = evaluateVlsi(
        BoomConfig::large(), CounterArch::Scalar, activity);
    EXPECT_GT(with_activity.powerOverheadPct, 0.0);
}

TEST(Vlsi, BiggerCoresHaveBiggerBaselines)
{
    double prev_area = 0;
    for (const BoomConfig &cfg : BoomConfig::allSizes()) {
        const VlsiReport r = evaluateVlsi(cfg, CounterArch::Scalar);
        EXPECT_GT(r.coreAreaUm2, prev_area) << cfg.name;
        prev_area = r.coreAreaUm2;
    }
}

} // namespace
} // namespace icicle
