/**
 * @file
 * Tests for the icicle-lint static model-invariant analyzer: one
 * seeded violation per rule family (wiring, CSR, counter bounds, TMA
 * conservation), clean-config checks over every shipped core size,
 * and property-style fuzzing that confirms every Error the linter
 * reports corresponds to a real runtime violation.
 */

#include <gtest/gtest.h>

#include "analysis/interval.hh"
#include "analysis/lint.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "perf/harness.hh"
#include "pmu/counters.hh"

using namespace icicle;

namespace
{

Program
stubProgram()
{
    ProgramBuilder b("stub");
    b.halt();
    return b.build();
}

/**
 * A minimal Core whose event-bus geometry, widths, and CSR file the
 * tests can corrupt at will — the real cores always wire themselves
 * consistently, so seeded wiring violations need a puppet.
 */
class PuppetCore : public Core
{
  public:
    PuppetCore(CoreKind kind, u32 core_width, u32 issue_width,
               CounterArch arch, const Program &program)
        : puppetKind(kind), widthC(core_width), widthI(issue_width),
          exec(program), csrFileImpl(kind, arch, &events)
    {
        if (kind == CoreKind::Boom) {
            events.setNumSources(EventId::UopsIssued, issue_width);
            events.setNumSources(EventId::FetchBubbles, core_width);
            events.setNumSources(EventId::UopsRetired, core_width);
            events.setNumSources(EventId::InstRetired, core_width);
            events.setNumSources(EventId::DCacheBlocked, core_width);
            events.setNumSources(EventId::DCacheBlockedDram,
                                 core_width);
        }
    }

    void tick() override { csrFileImpl.tick(events); }
    bool done() const override { return true; }
    u64
    run(u64, const std::function<void(Cycle, const EventBus &)> &)
        override
    {
        return 0;
    }
    Cycle cycle() const override { return 0; }
    const EventBus &bus() const override { return events; }
    CsrFile &csrFile() override { return csrFileImpl; }
    Executor &executor() override { return exec; }
    CoreKind kind() const override { return puppetKind; }
    u32 coreWidth() const override { return widthC; }
    u32 issueWidth() const override { return widthI; }
    const char *name() const override { return "Puppet"; }
    u64 total(EventId) const override { return 0; }
    u64 laneTotal(EventId, u32) const override { return 0; }

    EventBus events;

  private:
    CoreKind puppetKind;
    u32 widthC;
    u32 widthI;
    Executor exec;
    CsrFile csrFileImpl;
};

/** Deterministic PRNG for the fuzz tests. */
struct Rng64
{
    u64 state;
    explicit Rng64(u64 seed) : state(seed) {}
    u64
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 16;
    }
};

} // namespace

// ===================================================== clean configs

TEST(Lint, AllShippedConfigsAreClean)
{
    const Program program = stubProgram();
    std::vector<std::unique_ptr<Core>> cores;
    cores.push_back(makeRocket(RocketConfig{}, program));
    for (const BoomConfig &size : BoomConfig::allSizes())
        cores.push_back(makeBoom(size, program));

    for (const auto &core : cores) {
        const LintReport report = lintCore(*core);
        EXPECT_EQ(report.errorCount(), 0u) << core->name() << ":\n"
                                           << report.format();
        // The Table II fidelity note is always present.
        EXPECT_TRUE(report.hasRule("TMA-005"));
    }
}

TEST(Lint, AllCounterArchitecturesAreClean)
{
    const Program program = stubProgram();
    for (CounterArch arch : {CounterArch::Scalar, CounterArch::AddWires,
                             CounterArch::Distributed}) {
        RocketConfig rocket;
        rocket.counterArch = arch;
        EXPECT_EQ(lintCore(*makeRocket(rocket, program)).errorCount(),
                  0u);
        BoomConfig boom = BoomConfig::giga();
        boom.counterArch = arch;
        EXPECT_EQ(lintCore(*makeBoom(boom, program)).errorCount(), 0u);
    }
}

// ============================================= family 1: EVT wiring

TEST(LintWiring, DetectsSourceCountMismatch)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Boom, 3, 4, CounterArch::AddWires,
                    program);
    // Seed: decode lanes say W_C = 3 but the bus wires only 2
    // fetch-bubble sources.
    core.events.setNumSources(EventId::FetchBubbles, 2);
    const LintReport report = lintEventWiring(core);
    EXPECT_TRUE(report.hasRule("EVT-002")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintWiring, DetectsDoubleDrivenConditionEvent)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    // Seed: a per-cycle condition (icache-blocked) driven by two
    // wires would count the same stall twice.
    core.events.setNumSources(EventId::ICacheBlocked, 2);
    const LintReport report = lintEventWiring(core);
    EXPECT_TRUE(report.hasRule("EVT-005")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintWiring, DetectsIllegalSourceCount)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    core.events.setNumSources(EventId::Cycles, 0);
    EXPECT_TRUE(lintEventWiring(core).hasRule("EVT-001"));
    core.events.setNumSources(EventId::Cycles, kMaxSources + 1);
    EXPECT_TRUE(lintEventWiring(core).hasRule("EVT-001"));
}

TEST(LintWiring, CleanPuppetHasNoFindings)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Boom, 3, 4, CounterArch::AddWires,
                    program);
    EXPECT_EQ(lintEventWiring(core).errorCount(), 0u);
}

// ============================================= family 2: CSR config

TEST(LintCsr, DetectsBadEventSetId)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    const u64 selector = csr::selector(static_cast<EventSetId>(9),
                                       0x1, 0);
    const LintReport report =
        lintSelector(CoreKind::Rocket, core.bus(), 0, selector);
    EXPECT_TRUE(report.hasRule("CSR-001")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCsr, DetectsMaskBeyondSetPopulation)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    // Basic set on Rocket has far fewer than 40 events.
    const u64 selector =
        csr::selector(EventSetId::Basic, 1ull << 40, 0);
    const LintReport report =
        lintSelector(CoreKind::Rocket, core.bus(), 0, selector);
    EXPECT_TRUE(report.hasRule("CSR-002")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCsr, DetectsLaneSelectOutOfRange)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Boom, 3, 4, CounterArch::Scalar,
                    program);
    const int bit = maskBitOf(CoreKind::Boom, EventId::FetchBubbles);
    ASSERT_GE(bit, 0);
    // FetchBubbles has 3 sources; lane 7 does not exist.
    const u64 selector =
        csr::selector(EventSetId::Tma, 1ull << bit, 8);
    const LintReport report =
        lintSelector(CoreKind::Boom, core.bus(), 4, selector);
    EXPECT_TRUE(report.hasRule("CSR-003")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCsr, DetectsEventMappedToTwoCounters)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    CsrFile &csrs = core.csrFile();
    csrs.programEvent(0, EventId::BranchMispredict);
    csrs.programEvent(5, EventId::BranchMispredict);
    const LintReport report = lintCsrFile(core.csrs(), core.bus());
    EXPECT_TRUE(report.hasRule("CSR-004")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCsr, DisjointLanesAreNotDuplicates)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Boom, 3, 4, CounterArch::Scalar,
                    program);
    CsrFile &csrs = core.csrFile();
    csrs.program(0, {EventId::FetchBubbles}, 1); // lane 0
    csrs.program(1, {EventId::FetchBubbles}, 2); // lane 1
    const LintReport report = lintCsrFile(core.csrs(), core.bus());
    EXPECT_FALSE(report.hasRule("CSR-004")) << report.format();
}

TEST(LintCsr, WarnsOnReservedTlbEvent)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    core.csrFile().programEvent(0, EventId::DTlbMiss);
    const LintReport report = lintCsrFile(core.csrs(), core.bus());
    EXPECT_TRUE(report.hasRule("EVT-004")) << report.format();
    EXPECT_EQ(report.errorCount(), 0u); // a warning, not an error
}

TEST(LintCsr, WarnsOnIncoherentInhibitState)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    CsrFile &csrs = core.csrFile();
    csrs.programEvent(0, EventId::BranchMispredict);
    csrs.programEvent(1, EventId::Flush);
    // Enable counter 0 and mcycle... but leave counter 1 inhibited.
    csrs.writeCsr(csr::mcountinhibit, ~0ull & ~(1ull << 3) & ~1ull);
    const LintReport report = lintCsrFile(core.csrs(), core.bus());
    EXPECT_TRUE(report.hasRule("CSR-005")) << report.format();
}

// ====================================== family 3: counter bounds

TEST(LintCounter, DetectsLossyDistributedWidth)
{
    // 4 sources with 1-bit local counters: 2^1 < 4, overflow latches
    // saturate under a burst and events are lost.
    const LintReport report = lintDistributedBounds(4, 1, "seeded");
    EXPECT_TRUE(report.hasRule("CNT-002")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCounter, PaperSizingIsClean)
{
    // width = ceil(log2(sources)) is the paper's sizing; never lossy.
    for (u32 sources = 1; sources <= kMaxSources; sources++) {
        u32 width = 1;
        while ((1u << width) < sources)
            width++;
        EXPECT_EQ(lintDistributedBounds(sources, width, "paper")
                      .errorCount(),
                  0u)
            << sources << " sources";
    }
}

TEST(LintCounter, WarnsOnLargeUndercountBound)
{
    LintOptions opts;
    opts.undercountWarnThreshold = 16;
    // 8 x 2^8 = 2048 events of worst-case undercount > 16.
    const LintReport report =
        lintDistributedBounds(8, 8, "seeded", opts);
    EXPECT_TRUE(report.hasRule("CNT-003")) << report.format();
}

TEST(LintCounter, WarnsOnLongAddWiresChain)
{
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Boom, 12, 12, CounterArch::AddWires,
                    program);
    LintOptions opts;
    opts.addWiresChainWarnLength = 8;
    const LintReport report = lintCounterArch(core, opts);
    EXPECT_TRUE(report.hasRule("CNT-004")) << report.format();
}

TEST(LintCounter, ReportsMultiplexingForOversizedRequest)
{
    const Program program = stubProgram();
    // Per-lane Scalar TMA request on GigaBOOM with the level-3
    // extension exceeds 29 counters -> Info, not Error.
    BoomConfig config = BoomConfig::giga();
    config.counterArch = CounterArch::Scalar;
    auto scalar_core = makeBoom(config, program);

    std::vector<EventId> request = {
        EventId::UopsRetired,     EventId::UopsIssued,
        EventId::FetchBubbles,    EventId::Recovering,
        EventId::BranchMispredict, EventId::Flush,
        EventId::FenceRetired,    EventId::ICacheBlocked,
        EventId::DCacheBlocked,   EventId::DCacheBlockedDram};
    const LintReport report = lintPerfRequest(*scalar_core, request);
    EXPECT_EQ(report.errorCount(), 0u) << report.format();
    EXPECT_TRUE(report.hasRule("CNT-001")) << report.format();

    PerfHarness harness(*scalar_core);
    harness.addTmaEvents(true);
    const u64 cycles = harness.run(20000);
    EXPECT_GT(cycles, 0u);
    EXPECT_GT(harness.numGroups(), 1u);
}

TEST(LintCounter, RejectsDuplicateRequest)
{
    const Program program = stubProgram();
    auto core = makeRocket(RocketConfig{}, program);
    const std::vector<EventId> request = {EventId::BranchMispredict,
                                          EventId::BranchMispredict};
    const LintReport report = lintPerfRequest(*core, request);
    EXPECT_TRUE(report.hasRule("CSR-004")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintCounter, RejectsUnsupportedEventRequest)
{
    const Program program = stubProgram();
    auto core = makeRocket(RocketConfig{}, program);
    // uops-issued exists only on BOOM.
    const LintReport report =
        lintPerfRequest(*core, {EventId::UopsIssued});
    EXPECT_TRUE(report.hasRule("EVT-003"));
    EXPECT_GT(report.errorCount(), 0u);
}

// ====================================== family 4: TMA conservation

TEST(LintTma, ReferenceModelConservesForAllWidths)
{
    for (u32 width : {1u, 2u, 3u, 4u, 5u, 9u}) {
        TmaParams params;
        params.coreWidth = width;
        const LintReport report = lintTmaModel(params);
        EXPECT_EQ(report.errorCount(), 0u)
            << "W_C=" << width << ":\n"
            << report.format();
    }
}

TEST(LintTma, DetectsBrokenNormalization)
{
    TmaParams params;
    params.coreWidth = 2;
    // Seed: a model that "forgets" backend entirely — the top level
    // no longer sums to one.
    const TmaModelFn broken = [](const TmaCounters &c,
                                 const TmaParams &p) {
        TmaResult r = computeTma(c, p);
        r.backend = 0;
        r.coreBound = 0;
        r.memBound = 0;
        r.memBoundL2 = 0;
        r.memBoundDram = 0;
        return r;
    };
    const LintReport report = lintTmaModel(params, {}, broken);
    EXPECT_TRUE(report.hasRule("TMA-001")) << report.format();
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(LintTma, DetectsNegativeClass)
{
    TmaParams params;
    params.coreWidth = 1;
    // Seed: unclamped subtraction can push a class negative.
    const TmaModelFn broken = [](const TmaCounters &c,
                                 const TmaParams &p) {
        TmaResult r = computeTma(c, p);
        r.coreBound = r.backend - 2.0; // may go negative
        return r;
    };
    const LintReport report = lintTmaModel(params, {}, broken);
    EXPECT_TRUE(report.hasRule("TMA-003")) << report.format();
}

TEST(LintTma, DetectsChildParentMismatch)
{
    TmaParams params;
    params.coreWidth = 2;
    // Seed: frontend children that do not partition the parent.
    const TmaModelFn broken = [](const TmaCounters &c,
                                 const TmaParams &p) {
        TmaResult r = computeTma(c, p);
        r.pcResteer = r.frontend; // fetchLatency + pcResteer > parent
        return r;
    };
    const LintReport report = lintTmaModel(params, {}, broken);
    EXPECT_TRUE(report.hasRule("TMA-002")) << report.format();
}

TEST(LintTma, ReportsZeroWidthParams)
{
    TmaParams params;
    params.coreWidth = 0;
    EXPECT_GT(lintTmaModel(params).errorCount(), 0u);
}

TEST(LintTma, AlwaysRecordsTableTwoDiscrepancyNote)
{
    TmaParams params;
    params.coreWidth = 3;
    const LintReport report = lintTmaModel(params);
    const auto notes = report.byRule("TMA-005");
    ASSERT_EQ(notes.size(), 1u);
    EXPECT_EQ(notes[0].severity, Severity::Info);
}

// ============================================ enforcement gating

TEST(LintGate, EnforcementThrowsOnError)
{
    LintReport report;
    report.add("EVT-002", Severity::Error, "seeded");
    ASSERT_TRUE(lintOnConstruct());
    EXPECT_THROW(enforceLint(report, "test"), FatalError);
}

TEST(LintGate, ScopedDisableSuppressesEnforcement)
{
    LintReport report;
    report.add("EVT-002", Severity::Error, "seeded");
    {
        ScopedLintDisable no_gate;
        EXPECT_NO_THROW(enforceLint(report, "test"));
    }
    EXPECT_TRUE(lintOnConstruct());
    EXPECT_THROW(enforceLint(report, "test"), FatalError);
}

TEST(LintGate, HarnessFailsFastOnDuplicateRequest)
{
    const Program program = stubProgram();
    auto core = makeRocket(RocketConfig{}, program);
    PerfHarness harness(*core);
    harness.addEvent(EventId::DTlbMiss); // reserved: warns, allowed
    harness.addEvent(EventId::DTlbMiss); // dedup'd by addEvent
    EXPECT_NO_THROW(harness.run(100));
}

// ============================================ diagnostics engine

TEST(Diagnostics, JsonIsWellFormedAndEscaped)
{
    LintReport report;
    report.add("CSR-002", Severity::Error, "mask \"bit\" 40\nbad",
               "mhpmevent7");
    report.add("TMA-005", Severity::Info, "note");
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\\\"bit\\\""), std::string::npos) << json;
    EXPECT_NE(json.find("\\n"), std::string::npos) << json;
    EXPECT_EQ(json.find('\n'), std::string::npos) << json;
}

TEST(Diagnostics, CountsAndMergeWork)
{
    LintReport a;
    a.add("EVT-001", Severity::Error, "x");
    a.add("CNT-003", Severity::Warn, "y");
    LintReport b;
    b.add("TMA-005", Severity::Info, "z");
    a.merge(b);
    EXPECT_EQ(a.diagnostics().size(), 3u);
    EXPECT_EQ(a.errorCount(), 1u);
    EXPECT_EQ(a.count(Severity::Warn), 1u);
    EXPECT_EQ(a.count(Severity::Info), 1u);
    EXPECT_TRUE(a.hasRule("TMA-005"));
    EXPECT_FALSE(a.hasRule("TMA-001"));
}

// ============================================ interval arithmetic

TEST(Interval, ArithmeticIsConservative)
{
    const Interval a(-1, 2), b(3, 4);
    EXPECT_EQ((a + b).lo, 2);
    EXPECT_EQ((a + b).hi, 6);
    EXPECT_EQ((a - b).lo, -5);
    EXPECT_EQ((a - b).hi, -1);
    EXPECT_EQ((a * b).lo, -4);
    EXPECT_EQ((a * b).hi, 8);
    EXPECT_EQ((a / b).lo, -1.0 / 3.0);
    EXPECT_EQ((a / b).hi, 2.0 / 3.0);
    EXPECT_EQ(intervalClamp01(a).lo, 0);
    EXPECT_EQ(intervalClamp01(a).hi, 1);
    EXPECT_TRUE(intervalHull(a, b).contains(2.5));
}

TEST(Interval, SaturatingU64OpsAtHpmBoundaries)
{
    // The derivation engine computes per-run capacities like
    // `sources * horizon` against the 48-bit mhpmcounter width; every
    // op must clamp, never wrap, exactly at the boundaries.
    const u64 hpm = 1ull << 48;

    EXPECT_EQ(satAddU64(hpm - 1, 1), hpm);
    EXPECT_EQ(satAddU64(kU64Max - 1, 1), kU64Max);
    EXPECT_EQ(satAddU64(kU64Max, 1), kU64Max);
    EXPECT_EQ(satAddU64(kU64Max, kU64Max), kU64Max);

    EXPECT_EQ(satSubU64(hpm, hpm - 1), 1u);
    EXPECT_EQ(satSubU64(hpm - 1, hpm), 0u);
    EXPECT_EQ(satSubU64(0, kU64Max), 0u);

    // 16 sources (kMaxSources) saturating a full 48-bit counter is
    // still representable; squaring the counter capacity is not.
    EXPECT_EQ(satMulU64(hpm - 1, 16), (hpm - 1) * 16);
    EXPECT_EQ(satMulU64(hpm, hpm), kU64Max);
    EXPECT_EQ(satMulU64(1ull << 32, 1ull << 31), 1ull << 63);
    EXPECT_EQ(satMulU64(1ull << 32, 1ull << 32), kU64Max);
    EXPECT_EQ(satMulU64(0, kU64Max), 0u);
    EXPECT_EQ(satMulU64(kU64Max, 1), kU64Max);

    EXPECT_EQ(satDivU64(hpm, 2), hpm / 2);
    EXPECT_EQ(satDivU64(hpm, 0), kU64Max);
    EXPECT_EQ(satDivU64(0, 0), 0u);
    EXPECT_EQ(satDivU64(kU64Max, 1), kU64Max);
}

TEST(Interval, WideningTerminatesGrowingChains)
{
    const double inf = std::numeric_limits<double>::infinity();
    const Interval stable(0, 1);

    // A bound that holds is kept; a bound that grew jumps to infinity
    // (each bound can widen at most once, so fixpoints terminate).
    Interval w = intervalWiden(stable, Interval(0, 0.5));
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, 1);

    w = intervalWiden(stable, Interval(0, 2));
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, inf);

    w = intervalWiden(stable, Interval(-0.25, 0.5));
    EXPECT_EQ(w.lo, -inf);
    EXPECT_EQ(w.hi, 1);

    // Widening is idempotent once both bounds have jumped.
    const Interval top = intervalWiden(
        intervalWiden(stable, Interval(-1, 2)), Interval(-9, 9));
    EXPECT_EQ(top.lo, -inf);
    EXPECT_EQ(top.hi, inf);
    EXPECT_TRUE(top.contains(1e300));
}

// ================= property fuzz: lint errors are real violations

TEST(LintFuzz, DistributedErrorsMatchRuntimeEventLoss)
{
    // For every (sources, width) configuration: drive an adversarial
    // all-lanes-every-cycle burst long enough to saturate the one-hot
    // arbiter. The linter must report CNT-002 exactly when the
    // hardware actually loses events (corrected() falls short of the
    // exact count).
    for (u32 sources = 2; sources <= kMaxSources; sources++) {
        EventBus bus;
        bus.setNumSources(EventId::UopsIssued, sources);
        for (u32 width = 1; width <= 5; width++) {
            const bool lint_error =
                lintDistributedBounds(sources, width, "fuzz")
                    .hasErrors();

            DistributedCounter counter(EventId::UopsIssued, sources,
                                       width);
            const u64 cycles = 4096;
            for (u64 cycle = 0; cycle < cycles; cycle++) {
                bus.clear();
                bus.raiseLanes(EventId::UopsIssued, sources);
                counter.tick(bus);
            }
            const u64 exact = cycles * sources;
            const bool lost_events = counter.corrected() < exact;
            EXPECT_EQ(lint_error, lost_events)
                << sources << " sources, width " << width
                << ": corrected=" << counter.corrected()
                << " exact=" << exact;
        }
    }
}

TEST(LintFuzz, SelectorErrorsMatchDeadOrMiscountingCounters)
{
    // Fuzz raw selector values. Whenever the linter reports an Error
    // the programmed counter must misbehave at runtime (count nothing
    // although events fire); whenever the linter is silent the
    // counter must count.
    const Program program = stubProgram();
    PuppetCore core(CoreKind::Rocket, 1, 1, CounterArch::Scalar,
                    program);
    CsrFile &csrs = core.csrFile();
    Rng64 rng(0xf22);

    u32 seeded_errors = 0, seeded_clean = 0;
    for (u32 trial = 0; trial < 400; trial++) {
        // Bias the fuzz toward interesting fields.
        const u64 set_id = rng.next() % 8;       // half out of range
        const u64 mask = 1ull << (rng.next() % 12);
        const u64 lane = rng.next() % 3 ? 0 : 2; // sometimes invalid
        const u64 selector = set_id | (mask << 8) | (lane << 56);

        const LintReport report =
            lintSelector(CoreKind::Rocket, core.bus(), 0, selector);

        csrs.writeCsr(csr::mhpmevent3, selector);
        csrs.writeCsr(csr::mhpmcounter3, 0);
        csrs.setInhibit(false);
        // Fire every Rocket event on all lanes for a few cycles.
        for (u32 cycle = 0; cycle < 8; cycle++) {
            core.events.clear();
            for (u32 e = 0; e < kNumEvents; e++)
                core.events.raise(static_cast<EventId>(e), 0);
            csrs.tick(core.events);
        }
        csrs.setInhibit(true);
        const u64 counted = csrs.hpmCorrected(0);

        if (report.hasErrors()) {
            EXPECT_EQ(counted, 0u)
                << "selector " << std::hex << selector
                << " flagged Error but counted";
            seeded_errors++;
        } else {
            EXPECT_GT(counted, 0u)
                << "selector " << std::hex << selector
                << " lint-clean but counter stayed dead";
            seeded_clean++;
        }
    }
    // The fuzz must exercise both sides to be meaningful.
    EXPECT_GT(seeded_errors, 20u);
    EXPECT_GT(seeded_clean, 20u);
}

TEST(LintFuzz, WiringErrorsMatchHarnessMiscounts)
{
    // A per-slot event whose bus geometry disagrees with the core
    // width is exactly the case where CSR-programmed counting and the
    // geometry-derived expectation diverge; the linter must flag it.
    const Program program = stubProgram();
    Rng64 rng(42);
    for (u32 trial = 0; trial < 64; trial++) {
        const u32 core_width = 1 + rng.next() % 4;
        const u32 declared = 1 + rng.next() % 6;
        PuppetCore core(CoreKind::Boom, core_width, core_width + 1,
                        CounterArch::AddWires, program);
        core.events.setNumSources(EventId::UopsRetired, declared);
        const bool flagged = lintEventWiring(core).hasErrors();
        EXPECT_EQ(flagged, declared != core_width)
            << "W_C=" << core_width << " declared=" << declared;
    }
}
