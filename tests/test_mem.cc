/**
 * @file
 * Memory-hierarchy tests: set-associative cache behaviour (hits,
 * LRU, write-back), hierarchy latencies, MSHR semantics, and the
 * next-line instruction prefetcher.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/mshr.hh"

namespace icicle
{
namespace
{

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 64 B = 512 B.
    CacheConfig cfg;
    cfg.sizeBytes = 512;
    cfg.ways = 2;
    cfg.blockBytes = 64;
    cfg.hitLatency = 1;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000).hit);
    EXPECT_TRUE(cache.access(0x1000).hit);
    EXPECT_TRUE(cache.access(0x1038).hit); // same block
    EXPECT_FALSE(cache.access(0x1040).hit); // next block
}

TEST(Cache, LruEviction)
{
    Cache cache(tinyCache());
    // Three blocks mapping to the same set (set stride = 4 blocks).
    const Addr a = 0x0000, b = 0x0100, c = 0x0200;
    cache.access(a);
    cache.access(b);
    cache.access(a);      // a is now MRU
    cache.access(c);      // evicts b (LRU)
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, DirtyEvictionSignalsWriteback)
{
    Cache cache(tinyCache());
    cache.access(0x0000, true); // dirty
    cache.access(0x0100);
    const CacheAccess third = cache.access(0x0200); // evicts dirty
    EXPECT_TRUE(third.writeback);
}

TEST(Cache, InsertDoesNotCountAsAccess)
{
    Cache cache(tinyCache());
    cache.insert(0x3000);
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_TRUE(cache.probe(0x3000));
    EXPECT_TRUE(cache.access(0x3000).hit);
}

TEST(Cache, FlushAllInvalidates)
{
    Cache cache(tinyCache());
    cache.access(0x0000);
    cache.flushAll();
    EXPECT_FALSE(cache.probe(0x0000));
}

TEST(Cache, RejectsNonPowerOfTwoSets)
{
    CacheConfig bad;
    bad.sizeBytes = 3 * 64;
    bad.ways = 1;
    bad.blockBytes = 64;
    EXPECT_THROW(Cache cache(bad), FatalError);
}

TEST(Hierarchy, LatenciesStack)
{
    MemConfig cfg;
    MemHierarchy mem(cfg);
    // Cold: L1 miss + L2 miss -> DRAM latency.
    const MemResult cold = mem.data(0x4000, false);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_FALSE(cold.l2Hit);
    EXPECT_EQ(cold.latency,
              cfg.l1d.hitLatency + cfg.l2.hitLatency + cfg.dramLatency);
    // Warm: L1 hit.
    const MemResult warm = mem.data(0x4000, false);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.latency, cfg.l1d.hitLatency);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemConfig cfg;
    MemHierarchy mem(cfg);
    mem.data(0x8000, false);
    // Walk far past L1 capacity (32 KiB) but within L2 (512 KiB).
    for (Addr a = 0; a < 128 * 1024; a += 64)
        mem.data(0x100000 + a, false);
    const MemResult result = mem.data(0x8000, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.latency, cfg.l1d.hitLatency + cfg.l2.hitLatency);
}

TEST(Hierarchy, NextLinePrefetchFillsFollowingBlock)
{
    MemConfig cfg;
    cfg.icachePrefetch = true;
    MemHierarchy mem(cfg);
    mem.fetch(0x10000);
    EXPECT_TRUE(mem.l1i().probe(0x10040)); // prefetched
    const MemResult next = mem.fetch(0x10040);
    EXPECT_TRUE(next.l1Hit);
}

TEST(Hierarchy, NoPrefetchWithoutFlag)
{
    MemConfig cfg;
    cfg.icachePrefetch = false;
    MemHierarchy mem(cfg);
    mem.fetch(0x10000);
    EXPECT_FALSE(mem.l1i().probe(0x10040));
}

TEST(Mshr, AllocateDrainPending)
{
    MshrFile mshrs(2);
    EXPECT_FALSE(mshrs.anyBusy());
    EXPECT_TRUE(mshrs.allocate(10, 100));
    EXPECT_TRUE(mshrs.pending(10));
    EXPECT_EQ(mshrs.readyCycle(10), 100u);
    EXPECT_TRUE(mshrs.allocate(11, 120));
    EXPECT_TRUE(mshrs.full());
    // Secondary miss to a tracked block merges.
    EXPECT_TRUE(mshrs.allocate(10, 999));
    EXPECT_EQ(mshrs.readyCycle(10), 100u);
    // A third distinct block is refused.
    EXPECT_FALSE(mshrs.allocate(12, 130));
    mshrs.drain(100);
    EXPECT_FALSE(mshrs.pending(10));
    EXPECT_TRUE(mshrs.pending(11));
    EXPECT_EQ(mshrs.busyCount(), 1u);
    mshrs.reset();
    EXPECT_FALSE(mshrs.anyBusy());
}

} // namespace
} // namespace icicle
