/**
 * @file
 * Perf harness and tma_tool tests: the in-band CSR counting path must
 * agree with out-of-band ground truth for every counter architecture,
 * counter allocation must respect the 29-counter budget, and
 * multiplexing must produce sane scaled estimates.
 */

#include <gtest/gtest.h>

#include "boom/boom.hh"
#include "common/logging.hh"
#include "core/session.hh"
#include "isa/builder.hh"
#include "perf/harness.hh"
#include "perf/tma_tool.hh"
#include "pmu/csr.hh"
#include "rocket/rocket.hh"
#include "workloads/workloads.hh"

namespace icicle
{
namespace
{

class HarnessByArch : public ::testing::TestWithParam<int>
{
  protected:
    CounterArch arch() const
    { return static_cast<CounterArch>(GetParam()); }
};

TEST_P(HarnessByArch, InBandMatchesOutOfBandOnBoom)
{
    BoomConfig cfg = BoomConfig::large();
    cfg.counterArch = arch();
    BoomCore core(cfg, workloads::qsortKernel());
    PerfHarness harness(core);
    harness.addTmaEvents();
    harness.run(50'000'000);
    ASSERT_TRUE(core.done());

    // corrected() values must equal the exact host-side totals for
    // all three architectures (distributed via post-processing).
    for (EventId event :
         {EventId::UopsRetired, EventId::UopsIssued,
          EventId::FetchBubbles, EventId::Recovering,
          EventId::BranchMispredict, EventId::FenceRetired,
          EventId::DCacheBlocked}) {
        EXPECT_EQ(harness.value(event), core.total(event))
            << eventName(event) << " under "
            << counterArchName(arch());
    }
}

TEST_P(HarnessByArch, InBandMatchesOutOfBandOnRocket)
{
    RocketConfig cfg;
    cfg.counterArch = arch();
    RocketCore core(cfg, workloads::rsort());
    PerfHarness harness(core);
    harness.addTmaEvents();
    harness.run(50'000'000);
    ASSERT_TRUE(core.done());
    for (EventId event :
         {EventId::InstRetired, EventId::InstIssued,
          EventId::FetchBubbles, EventId::Recovering,
          EventId::ICacheBlocked, EventId::DCacheBlocked}) {
        EXPECT_EQ(harness.value(event), core.total(event))
            << eventName(event);
    }
}

INSTANTIATE_TEST_SUITE_P(Archs, HarnessByArch, ::testing::Range(0, 3),
                         [](const auto &info) {
                             std::string name = counterArchName(
                                 static_cast<CounterArch>(info.param));
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(PerfHarness, ScalarGigaTmaSetFitsExactly)
{
    // Scalar counters on GigaBOOM: 9 issue lanes + 3x5 commit-width
    // lanes + 5 singles = 29 counters, exactly the budget.
    BoomConfig cfg = BoomConfig::giga();
    cfg.counterArch = CounterArch::Scalar;
    BoomCore core(cfg, workloads::towers());
    PerfHarness harness(core);
    harness.addTmaEvents(/*level3=*/false);
    harness.run(10'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(harness.numGroups(), 1u);
    EXPECT_EQ(harness.countersUsed(), 29u);
}

TEST(PerfHarness, Level3ExtensionForcesMultiplexingOnScalarGiga)
{
    // The Mem-Bound split adds W_C more per-lane counters: the scalar
    // architecture overflows the 29-counter budget and the harness
    // falls back to time multiplexing.
    BoomConfig cfg = BoomConfig::giga();
    cfg.counterArch = CounterArch::Scalar;
    BoomCore core(cfg, workloads::towers());
    PerfHarness harness(core);
    harness.addTmaEvents(/*level3=*/true);
    harness.run(10'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(harness.numGroups(), 1u);
}

TEST(PerfHarness, AddWiresUsesOneCounterPerEvent)
{
    BoomConfig cfg = BoomConfig::giga();
    cfg.counterArch = CounterArch::AddWires;
    BoomCore core(cfg, workloads::towers());
    PerfHarness harness(core);
    harness.addTmaEvents(/*level3=*/false);
    harness.run(10'000'000);
    EXPECT_EQ(harness.countersUsed(), 9u);
}

TEST(PerfHarness, MultiplexingScalesEstimates)
{
    // Force two groups by requesting the TMA set plus enough extra
    // per-lane events to exceed 29 counters.
    BoomConfig cfg = BoomConfig::giga();
    cfg.counterArch = CounterArch::Scalar;
    BoomCore core(cfg, workloads::spec525X264R());
    PerfHarness harness(core);
    harness.addTmaEvents();
    harness.addEvent(EventId::ICacheMiss);
    harness.addEvent(EventId::DCacheMiss);
    harness.addEvent(EventId::BranchResolved);
    harness.run(50'000'000, 2000);
    ASSERT_TRUE(core.done());
    EXPECT_GT(harness.numGroups(), 1u);
    // Multiplexed estimates are extrapolations: allow generous error
    // but demand the right order of magnitude on a steady event.
    const u64 estimated = harness.value(EventId::UopsRetired);
    const u64 truth = core.total(EventId::UopsRetired);
    EXPECT_GT(estimated, truth / 2);
    EXPECT_LT(estimated, truth * 2);
}

TEST(PerfHarness, RejectsUnsupportedEvent)
{
    BoomCore core(BoomConfig::large(), workloads::towers());
    PerfHarness harness(core);
    EXPECT_THROW(harness.addEvent(EventId::LoadUseInterlock),
                 FatalError);
}

TEST(TmaTool, InBandAndOutOfBandAgree)
{
    BoomConfig cfg = BoomConfig::large();
    cfg.counterArch = CounterArch::AddWires;
    BoomCore in_band_core(cfg, workloads::mergesort());
    BoomCore oob_core(cfg, workloads::mergesort());
    const TmaRun in_band =
        runTmaAnalysis(in_band_core, TmaSource::InBand, 50'000'000);
    const TmaRun oob =
        runTmaAnalysis(oob_core, TmaSource::OutOfBand, 50'000'000);
    ASSERT_TRUE(in_band.finished);
    ASSERT_TRUE(oob.finished);
    EXPECT_NEAR(in_band.tma.retiring, oob.tma.retiring, 1e-9);
    EXPECT_NEAR(in_band.tma.backend, oob.tma.backend, 1e-9);
    EXPECT_NEAR(in_band.tma.frontend, oob.tma.frontend, 1e-9);
}

/**
 * A workload that violates the inhibit-before-write protocol: it
 * clobbers mhpmcounter3 through the in-band Zicsr path while the
 * harness has the counter armed. Every TMA field fed by that counter
 * is garbage afterwards, and the harness must say so.
 */
Program counterClobberWorkload()
{
    ProgramBuilder b("clobber");
    Label warm = b.newLabel(), cool = b.newLabel();
    b.li(reg::t2, 2000);
    b.bind(warm);
    b.addi(reg::t2, reg::t2, -1);
    b.bnez(reg::t2, warm);
    b.csrrwi(reg::zero, csr::mhpmcounter3, 0);
    b.li(reg::t2, 2000);
    b.bind(cool);
    b.addi(reg::t2, reg::t2, -1);
    b.bnez(reg::t2, cool);
    b.halt();
    return b.build();
}

TEST(PerfHarness, InBandCounterClobberIsMarkedUnreliable)
{
    RocketCore core(RocketConfig{}, counterClobberWorkload());
    PerfHarness harness(core);
    harness.addTmaEvents();
    harness.run(1'000'000);
    ASSERT_TRUE(core.done());

    EXPECT_TRUE(harness.anyUnreliable());
    const std::vector<UnreliableEvent> unreliable =
        harness.unreliableEvents();
    ASSERT_FALSE(unreliable.empty());
    // The first TMA event lands on hpm index 0 = mhpmcounter3, the
    // counter the workload clobbers.
    EXPECT_EQ(unreliable[0].event, EventId::InstRetired);
    EXPECT_TRUE(unreliable[0].armedWrite);
    EXPECT_FALSE(unreliable[0].saturated);
}

TEST(PerfHarness, CleanRunsHaveNoUnreliableEvents)
{
    RocketCore core(RocketConfig{}, workloads::towers());
    PerfHarness harness(core);
    harness.addTmaEvents();
    harness.run(80'000'000);
    ASSERT_TRUE(core.done());
    EXPECT_FALSE(harness.anyUnreliable());
    EXPECT_TRUE(harness.unreliableEvents().empty());
}

TEST(TmaTool, ReportFlagsUnreliableCounters)
{
    RocketCore core(RocketConfig{}, counterClobberWorkload());
    const TmaRun run =
        runTmaAnalysis(core, TmaSource::InBand, 1'000'000);
    ASSERT_TRUE(run.finished);
    ASSERT_FALSE(run.unreliable.empty());

    const std::string report = tmaToolReport(run, "clobber");
    EXPECT_NE(report.find("UNRELIABLE"), std::string::npos);
    EXPECT_NE(report.find("Retiring"), std::string::npos);
    EXPECT_NE(report.find("written while armed"), std::string::npos);

    // A protocol-respecting run carries no warnings.
    RocketCore clean_core(RocketConfig{}, workloads::towers());
    const TmaRun clean =
        runTmaAnalysis(clean_core, TmaSource::InBand, 80'000'000);
    ASSERT_TRUE(clean.finished);
    EXPECT_TRUE(clean.unreliable.empty());
    EXPECT_EQ(tmaToolReport(clean, "towers").find("UNRELIABLE"),
              std::string::npos);
}

TEST(TmaTool, ReportMentionsCompletion)
{
    RocketCore core(RocketConfig{}, workloads::towers());
    const TmaRun run = runTmaAnalysis(core, TmaSource::OutOfBand);
    const std::string report = tmaToolReport(run, "towers");
    EXPECT_NE(report.find("towers"), std::string::npos);
    EXPECT_EQ(report.find("did not run"), std::string::npos);
}

} // namespace
} // namespace icicle
