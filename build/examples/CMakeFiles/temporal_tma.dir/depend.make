# Empty dependencies file for temporal_tma.
# This may be replaced when dependencies are built.
