file(REMOVE_RECURSE
  "CMakeFiles/temporal_tma.dir/temporal_tma.cpp.o"
  "CMakeFiles/temporal_tma.dir/temporal_tma.cpp.o.d"
  "temporal_tma"
  "temporal_tma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
