# Empty dependencies file for characterize_workload.
# This may be replaced when dependencies are built.
