
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boom/boom.cc" "src/CMakeFiles/icicle.dir/boom/boom.cc.o" "gcc" "src/CMakeFiles/icicle.dir/boom/boom.cc.o.d"
  "/root/repo/src/bpred/bpred.cc" "src/CMakeFiles/icicle.dir/bpred/bpred.cc.o" "gcc" "src/CMakeFiles/icicle.dir/bpred/bpred.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/icicle.dir/core/session.cc.o" "gcc" "src/CMakeFiles/icicle.dir/core/session.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/icicle.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/icicle.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/icicle.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/icicle.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/CMakeFiles/icicle.dir/isa/encoding.cc.o" "gcc" "src/CMakeFiles/icicle.dir/isa/encoding.cc.o.d"
  "/root/repo/src/isa/executor.cc" "src/CMakeFiles/icicle.dir/isa/executor.cc.o" "gcc" "src/CMakeFiles/icicle.dir/isa/executor.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/CMakeFiles/icicle.dir/isa/inst.cc.o" "gcc" "src/CMakeFiles/icicle.dir/isa/inst.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/icicle.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/icicle.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/icicle.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/icicle.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/perf/harness.cc" "src/CMakeFiles/icicle.dir/perf/harness.cc.o" "gcc" "src/CMakeFiles/icicle.dir/perf/harness.cc.o.d"
  "/root/repo/src/perf/tma_tool.cc" "src/CMakeFiles/icicle.dir/perf/tma_tool.cc.o" "gcc" "src/CMakeFiles/icicle.dir/perf/tma_tool.cc.o.d"
  "/root/repo/src/pmu/counters.cc" "src/CMakeFiles/icicle.dir/pmu/counters.cc.o" "gcc" "src/CMakeFiles/icicle.dir/pmu/counters.cc.o.d"
  "/root/repo/src/pmu/csr.cc" "src/CMakeFiles/icicle.dir/pmu/csr.cc.o" "gcc" "src/CMakeFiles/icicle.dir/pmu/csr.cc.o.d"
  "/root/repo/src/pmu/event.cc" "src/CMakeFiles/icicle.dir/pmu/event.cc.o" "gcc" "src/CMakeFiles/icicle.dir/pmu/event.cc.o.d"
  "/root/repo/src/rocket/rocket.cc" "src/CMakeFiles/icicle.dir/rocket/rocket.cc.o" "gcc" "src/CMakeFiles/icicle.dir/rocket/rocket.cc.o.d"
  "/root/repo/src/tma/bottomup.cc" "src/CMakeFiles/icicle.dir/tma/bottomup.cc.o" "gcc" "src/CMakeFiles/icicle.dir/tma/bottomup.cc.o.d"
  "/root/repo/src/tma/tma.cc" "src/CMakeFiles/icicle.dir/tma/tma.cc.o" "gcc" "src/CMakeFiles/icicle.dir/tma/tma.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/icicle.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/icicle.dir/trace/trace.cc.o.d"
  "/root/repo/src/vlsi/vlsi.cc" "src/CMakeFiles/icicle.dir/vlsi/vlsi.cc.o" "gcc" "src/CMakeFiles/icicle.dir/vlsi/vlsi.cc.o.d"
  "/root/repo/src/workloads/composite.cc" "src/CMakeFiles/icicle.dir/workloads/composite.cc.o" "gcc" "src/CMakeFiles/icicle.dir/workloads/composite.cc.o.d"
  "/root/repo/src/workloads/generator.cc" "src/CMakeFiles/icicle.dir/workloads/generator.cc.o" "gcc" "src/CMakeFiles/icicle.dir/workloads/generator.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/icicle.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/icicle.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/icicle.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/icicle.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/CMakeFiles/icicle.dir/workloads/spec.cc.o" "gcc" "src/CMakeFiles/icicle.dir/workloads/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
