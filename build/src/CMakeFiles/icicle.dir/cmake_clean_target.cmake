file(REMOVE_RECURSE
  "libicicle.a"
)
