# Empty compiler generated dependencies file for icicle.
# This may be replaced when dependencies are built.
