file(REMOVE_RECURSE
  "CMakeFiles/test_boom.dir/test_boom.cc.o"
  "CMakeFiles/test_boom.dir/test_boom.cc.o.d"
  "test_boom"
  "test_boom.pdb"
  "test_boom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
