# Empty dependencies file for test_boom.
# This may be replaced when dependencies are built.
