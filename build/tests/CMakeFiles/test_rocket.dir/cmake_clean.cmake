file(REMOVE_RECURSE
  "CMakeFiles/test_rocket.dir/test_rocket.cc.o"
  "CMakeFiles/test_rocket.dir/test_rocket.cc.o.d"
  "test_rocket"
  "test_rocket.pdb"
  "test_rocket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
