# Empty compiler generated dependencies file for test_rocket.
# This may be replaced when dependencies are built.
