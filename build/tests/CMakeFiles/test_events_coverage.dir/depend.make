# Empty dependencies file for test_events_coverage.
# This may be replaced when dependencies are built.
