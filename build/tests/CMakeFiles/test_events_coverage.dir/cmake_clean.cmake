file(REMOVE_RECURSE
  "CMakeFiles/test_events_coverage.dir/test_events_coverage.cc.o"
  "CMakeFiles/test_events_coverage.dir/test_events_coverage.cc.o.d"
  "test_events_coverage"
  "test_events_coverage.pdb"
  "test_events_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_events_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
