# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_boom[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_events_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_pmu[1]_include.cmake")
include("/root/repo/build/tests/test_rocket[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_tma[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_vlsi[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
