file(REMOVE_RECURSE
  "../bench/bench_fig7_boom_cs_coremark"
  "../bench/bench_fig7_boom_cs_coremark.pdb"
  "CMakeFiles/bench_fig7_boom_cs_coremark.dir/bench_fig7_boom_cs_coremark.cc.o"
  "CMakeFiles/bench_fig7_boom_cs_coremark.dir/bench_fig7_boom_cs_coremark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_boom_cs_coremark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
