file(REMOVE_RECURSE
  "../bench/bench_fig9_vlsi"
  "../bench/bench_fig9_vlsi.pdb"
  "CMakeFiles/bench_fig9_vlsi.dir/bench_fig9_vlsi.cc.o"
  "CMakeFiles/bench_fig9_vlsi.dir/bench_fig9_vlsi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
