file(REMOVE_RECURSE
  "../bench/bench_fig7_rocket_cs2_brinv"
  "../bench/bench_fig7_rocket_cs2_brinv.pdb"
  "CMakeFiles/bench_fig7_rocket_cs2_brinv.dir/bench_fig7_rocket_cs2_brinv.cc.o"
  "CMakeFiles/bench_fig7_rocket_cs2_brinv.dir/bench_fig7_rocket_cs2_brinv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rocket_cs2_brinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
