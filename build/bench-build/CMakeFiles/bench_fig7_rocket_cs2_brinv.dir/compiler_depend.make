# Empty compiler generated dependencies file for bench_fig7_rocket_cs2_brinv.
# This may be replaced when dependencies are built.
