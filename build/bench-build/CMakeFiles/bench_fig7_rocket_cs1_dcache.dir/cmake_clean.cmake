file(REMOVE_RECURSE
  "../bench/bench_fig7_rocket_cs1_dcache"
  "../bench/bench_fig7_rocket_cs1_dcache.pdb"
  "CMakeFiles/bench_fig7_rocket_cs1_dcache.dir/bench_fig7_rocket_cs1_dcache.cc.o"
  "CMakeFiles/bench_fig7_rocket_cs1_dcache.dir/bench_fig7_rocket_cs1_dcache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rocket_cs1_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
