# Empty compiler generated dependencies file for bench_fig7_rocket_cs1_dcache.
# This may be replaced when dependencies are built.
