file(REMOVE_RECURSE
  "../bench/bench_fig7_rocket_tma"
  "../bench/bench_fig7_rocket_tma.pdb"
  "CMakeFiles/bench_fig7_rocket_tma.dir/bench_fig7_rocket_tma.cc.o"
  "CMakeFiles/bench_fig7_rocket_tma.dir/bench_fig7_rocket_tma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rocket_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
