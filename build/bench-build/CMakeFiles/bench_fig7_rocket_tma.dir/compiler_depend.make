# Empty compiler generated dependencies file for bench_fig7_rocket_tma.
# This may be replaced when dependencies are built.
