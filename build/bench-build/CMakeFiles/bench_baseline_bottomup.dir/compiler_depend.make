# Empty compiler generated dependencies file for bench_baseline_bottomup.
# This may be replaced when dependencies are built.
