file(REMOVE_RECURSE
  "../bench/bench_baseline_bottomup"
  "../bench/bench_baseline_bottomup.pdb"
  "CMakeFiles/bench_baseline_bottomup.dir/bench_baseline_bottomup.cc.o"
  "CMakeFiles/bench_baseline_bottomup.dir/bench_baseline_bottomup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_bottomup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
