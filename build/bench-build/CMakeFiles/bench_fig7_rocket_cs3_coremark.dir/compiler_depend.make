# Empty compiler generated dependencies file for bench_fig7_rocket_cs3_coremark.
# This may be replaced when dependencies are built.
