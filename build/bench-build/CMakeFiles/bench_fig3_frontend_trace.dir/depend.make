# Empty dependencies file for bench_fig3_frontend_trace.
# This may be replaced when dependencies are built.
