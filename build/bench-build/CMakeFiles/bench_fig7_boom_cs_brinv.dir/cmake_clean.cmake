file(REMOVE_RECURSE
  "../bench/bench_fig7_boom_cs_brinv"
  "../bench/bench_fig7_boom_cs_brinv.pdb"
  "CMakeFiles/bench_fig7_boom_cs_brinv.dir/bench_fig7_boom_cs_brinv.cc.o"
  "CMakeFiles/bench_fig7_boom_cs_brinv.dir/bench_fig7_boom_cs_brinv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_boom_cs_brinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
