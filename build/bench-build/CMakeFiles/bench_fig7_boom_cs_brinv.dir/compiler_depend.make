# Empty compiler generated dependencies file for bench_fig7_boom_cs_brinv.
# This may be replaced when dependencies are built.
