# Empty dependencies file for bench_fig7_boom_micro.
# This may be replaced when dependencies are built.
