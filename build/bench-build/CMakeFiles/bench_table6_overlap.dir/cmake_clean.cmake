file(REMOVE_RECURSE
  "../bench/bench_table6_overlap"
  "../bench/bench_table6_overlap.pdb"
  "CMakeFiles/bench_table6_overlap.dir/bench_table6_overlap.cc.o"
  "CMakeFiles/bench_table6_overlap.dir/bench_table6_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
