file(REMOVE_RECURSE
  "../bench/bench_counter_comparison"
  "../bench/bench_counter_comparison.pdb"
  "CMakeFiles/bench_counter_comparison.dir/bench_counter_comparison.cc.o"
  "CMakeFiles/bench_counter_comparison.dir/bench_counter_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
