# Empty compiler generated dependencies file for bench_counter_comparison.
# This may be replaced when dependencies are built.
