file(REMOVE_RECURSE
  "../bench/bench_table5_perlane"
  "../bench/bench_table5_perlane.pdb"
  "CMakeFiles/bench_table5_perlane.dir/bench_table5_perlane.cc.o"
  "CMakeFiles/bench_table5_perlane.dir/bench_table5_perlane.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_perlane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
