# Empty dependencies file for bench_fig8_recovery_cdf.
# This may be replaced when dependencies are built.
