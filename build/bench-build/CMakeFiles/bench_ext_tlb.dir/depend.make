# Empty dependencies file for bench_ext_tlb.
# This may be replaced when dependencies are built.
