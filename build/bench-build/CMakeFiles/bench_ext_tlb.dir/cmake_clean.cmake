file(REMOVE_RECURSE
  "../bench/bench_ext_tlb"
  "../bench/bench_ext_tlb.pdb"
  "CMakeFiles/bench_ext_tlb.dir/bench_ext_tlb.cc.o"
  "CMakeFiles/bench_ext_tlb.dir/bench_ext_tlb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
